#!/usr/bin/env python3
"""Determinism lint: project-specific static analysis for the HLSRG engine.

Enforces the invariants the multi-shard engine depends on (DESIGN.md §12):

  unordered-iteration    no range-for / iterator loop over std::unordered_map
                         or std::unordered_set in digest-affecting code
                         (src/sim, src/core, src/net, src/rlsmp, src/flood,
                         src/service, src/harness) unless the loop goes
                         through det::sorted_view / det::sorted_keys
                         (util/ordered.h) or carries an ALLOW annotation.
  pointer-keyed-container no pointer- or smart-pointer-keyed associative
                         containers anywhere in src/ — addresses vary run to
                         run, so any ordering or hashing over them is
                         nondeterministic by construction.
  rng-discipline         all randomness flows from the seeded root through
                         Rng::split with a named RngStreamId. std::random_device,
                         std::mt19937 (and friends), rand()/srand(), direct
                         Rng(seed) construction outside src/sim/rng.h, and
                         split(<bare integer>) are banned.
  wall-clock             no wall-clock reads (std::chrono system/steady/
                         high_resolution clocks, time(), gettimeofday,
                         clock()) outside src/obs/profiler.cpp — the single
                         sanctioned wall-clock site. Timing consumers call
                         monotonic_now_ns()/monotonic_now_sec() from
                         obs/profiler.h; sim code tells time with
                         Simulator::now() only.
  send-kind              every packet entering RadioMedium / WiredNetwork
                         carries an explicit PacketKind: make_packet calls
                         must pass PacketKind::k* (or forward a `kind`
                         value), broadcast_each / unicast_frame must receive
                         a kind argument, and bare `Packet p;` declarations
                         must assign `.kind` immediately or be annotated.

Suppressions: `// HLSRG_LINT_ALLOW(<rule>): <reason>` on the finding line or
in the contiguous comment block immediately above it. The reason is
mandatory; an ALLOW with an unknown rule id or an empty reason is itself a
finding (bad-allow), so every suppression in the tree stays auditable.

Frontends:
  textual   (default) zero-dependency tokenizer over comment/string-blanked
            source. Deterministic, fixture-tested in ctest, and the frontend
            CI gates on.
  libclang  AST-accurate pass via clang.cindex when the libclang Python
            bindings and shared library are installed (pip install libclang).
            Same rules, type-resolved matching — catches aliased container
            types the textual frontend can only see through local `using`
            declarations. Advisory until pinned in CI.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import re
import sys

RULES = {
    "unordered-iteration":
        "iteration over an unordered container in digest-affecting code",
    "pointer-keyed-container":
        "pointer-keyed associative container in sim state",
    "rng-discipline":
        "RNG construction outside Rng::split with a named RngStreamId",
    "wall-clock":
        "wall-clock read outside harness timing code",
    "send-kind":
        "packet send site without an explicit PacketKind",
    "bad-allow":
        "malformed HLSRG_LINT_ALLOW annotation",
}

# Directories (relative to the repo root) whose iteration order feeds the
# determinism digest. unordered-iteration fires only here; the other rules
# cover all of src/.
DIGEST_SCOPE = (
    "src/sim", "src/core", "src/net", "src/rlsmp", "src/flood",
    "src/service", "src/harness",
)

# rng-discipline: files allowed to construct Rng directly (the generator's
# own definition; everything else splits from a Simulator stream).
RNG_CONSTRUCTION_ALLOWLIST = ("src/sim/rng.h",)

# wall-clock: the obs profiler is the single sanctioned wall-clock site.
# Everything else (harness runner, benches, scenario_cli) takes timestamps
# through obs/profiler.h monotonic_now_ns()/monotonic_now_sec(), so raw
# clock reads stay confined to one translation unit.
WALL_CLOCK_ALLOWLIST = ("src/obs/profiler.cpp",)

ALLOW_RE = re.compile(r"HLSRG_LINT_ALLOW\(([^)]*)\)\s*(:?)\s*(.*)")

UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")
ASSOC_TYPES = UNORDERED_TYPES + ("map", "set", "multimap", "multiset")
BANNED_ENGINES = ("random_device", "mt19937", "mt19937_64", "minstd_rand",
                  "minstd_rand0", "default_random_engine", "ranlux24",
                  "ranlux48", "knuth_b")
WALL_CLOCKS = ("system_clock", "steady_clock", "high_resolution_clock")


@dataclasses.dataclass
class Finding:
    rule: str
    path: str
    line: int  # 1-based
    message: str
    suppressed: bool = False
    reason: str = ""

    def key(self):
        return (self.path, self.line, self.rule)


@dataclasses.dataclass
class SourceFile:
    path: str          # repo-relative, forward slashes
    raw: str           # original text
    code: str          # comments and string/char literals blanked to spaces
    comments: dict     # line (1-based) -> comment text on that line
    comment_only: set  # lines that hold nothing but comments/whitespace


def blank_comments_and_strings(text: str):
    """Returns (code, comments, comment_only) with literals space-blanked.

    Line structure is preserved exactly so offsets map 1:1; comment text is
    recorded per line for ALLOW parsing.
    """
    out = list(text)
    comments = {}
    comment_only = set()
    i, n = 0, len(text)
    line = 1

    def record_comment(s, e):
        seg_line = text.count("\n", 0, s) + 1
        for part in text[s:e].split("\n"):
            comments[seg_line] = comments.get(seg_line, "") + part
            seg_line += 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            record_comment(i, j)
            for k in range(i, j):
                out[k] = " "
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            record_comment(i, j)
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, j)
            i = j
        elif c == '"' or c == "'":
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            for k in range(i + 1, j - 1):
                if out[k] != "\n":
                    out[k] = " "
            line += text.count("\n", i, j)
            i = j
        else:
            i += 1

    code = "".join(out)
    for ln, code_line in enumerate(code.split("\n"), start=1):
        if ln in comments and not code_line.strip():
            comment_only.add(ln)
    return code, comments, comment_only


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), "r", encoding="utf-8",
              errors="replace") as f:
        raw = f.read()
    code, comments, comment_only = blank_comments_and_strings(raw)
    return SourceFile(path=rel.replace(os.sep, "/"), raw=raw, code=code,
                      comments=comments, comment_only=comment_only)


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def match_angle(code: str, i: int):
    """code[i] == '<': returns offset past the matching '>' or None."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}" :
            return None  # not a template argument list after all
        i += 1
    return None


def match_paren(code: str, i: int):
    """code[i] == '(': returns offset past the matching ')' or None."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return None


def split_top_level(args: str, sep: str = ","):
    """Splits an argument/template list on top-level separators."""
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def collect_container_decls(sf: SourceFile):
    """Finds unordered-container declarations and local unordered aliases.

    Returns (names, aliases, decls) where `names` is every identifier
    declared with an unordered type (members, locals, and functions that
    return one — iterating a returned reference is just as order-dependent),
    `aliases` is local `using X = std::unordered_map<...>` type names, and
    `decls` lists (line, container_kw, key_type_text) for every associative
    container mention (ordered and unordered) for the pointer-key rule.
    """
    code = sf.code
    names, aliases, decls = set(), set(), []
    for m in re.finditer(r"\b(unordered_map|unordered_set|unordered_multimap|"
                         r"unordered_multiset|map|set|multimap|multiset)\s*<",
                         code):
        kw = m.group(1)
        # Qualification guard: bare map/set must be std:: or det:: qualified
        # to count (local types named `map` don't exist here, but geometry
        # code could legitimately have a member called `set`).
        prefix = code[max(0, m.start() - 8):m.start()]
        qualified = prefix.rstrip().endswith("::")
        if kw not in UNORDERED_TYPES and not qualified:
            continue
        open_angle = code.find("<", m.start())
        close = match_angle(code, open_angle)
        if close is None:
            continue
        args = code[open_angle + 1:close - 1]
        key_type = split_top_level(args)[0].strip()
        decls.append((line_of(code, m.start()), kw, key_type))
        if kw not in UNORDERED_TYPES:
            continue
        # What follows the template args: `&`/`*`/`>`… then an identifier is
        # a declaration (member, local, param, or returning function).
        tail = code[close:close + 160]
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_][A-Za-z0-9_]*)",
                      tail)
        if dm and dm.group(1) not in ("const", "return", "operator"):
            names.add(dm.group(1))
    for m in re.finditer(r"\busing\s+([A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
                         r"(?:std\s*::\s*)?(unordered_map|unordered_set|"
                         r"unordered_multimap|unordered_multiset)\s*<", code):
        aliases.add(m.group(1))
    # Second pass: declarations through local aliases (`Index idx;`).
    for alias in aliases:
        for m in re.finditer(r"\b" + re.escape(alias) +
                             r"\b\s*&?\s*([A-Za-z_][A-Za-z0-9_]*)\s*[;{=(]",
                             code):
            if m.group(1) not in ("const",):
                names.add(m.group(1))
    return names, aliases, decls


class Linter:
    def __init__(self, root: str, digest_scope=DIGEST_SCOPE,
                 force_digest_scope: bool = False):
        self.root = root
        self.digest_scope = tuple(d.rstrip("/") + "/" for d in digest_scope)
        self.force_digest_scope = force_digest_scope
        self.findings: list[Finding] = []

    # ---- suppression ------------------------------------------------------

    def allow_reason(self, sf: SourceFile, line: int, rule: str):
        """Returns the ALLOW reason covering `line` for `rule`, else None.

        An annotation covers its own line and the whole statement below its
        comment block (NOLINTNEXTLINE semantics, statement-granular: walking
        up from the finding, continuation lines of an unterminated statement
        do not break the link to the comment block above).
        """
        code_lines = sf.code.split("\n")
        candidates = [line]
        ln = line - 1
        while ln >= 1:
            if ln in sf.comment_only:
                candidates.append(ln)
                ln -= 1
                continue
            text = code_lines[ln - 1].strip() if ln <= len(code_lines) else ""
            # A code line that ends a statement (or opens/closes a block)
            # seals the search; a continuation line keeps walking up.
            if not text or text.endswith((";", "{", "}", ":")):
                break
            ln -= 1
        for ln in candidates:
            text = sf.comments.get(ln, "")
            m = ALLOW_RE.search(text)
            if not m:
                continue
            allowed_rule = m.group(1).strip()
            if allowed_rule != rule:
                continue
            reason = m.group(3).strip()
            # The reason may wrap across the rest of the comment block.
            nxt = ln + 1
            while nxt in sf.comments and nxt in sf.comment_only:
                cont = sf.comments[nxt].lstrip("/ ").strip()
                if ALLOW_RE.search(cont):
                    break
                reason = (reason + " " + cont).strip()
                nxt += 1
            return reason
        return None

    def check_allow_syntax(self, sf: SourceFile):
        for ln, text in sorted(sf.comments.items()):
            m = ALLOW_RE.search(text)
            if not m:
                continue
            rule = m.group(1).strip()
            if rule not in RULES or rule == "bad-allow":
                self.emit(sf, ln, "bad-allow",
                          f"ALLOW names unknown rule '{rule}'")
                continue
            reason = m.group(3).strip()
            if not reason:
                nxt = sf.comments.get(ln + 1, "").lstrip("/ ").strip()
                if not nxt:
                    self.emit(sf, ln, "bad-allow",
                              f"ALLOW({rule}) carries no reason")

    def emit(self, sf: SourceFile, line: int, rule: str, message: str):
        f = Finding(rule=rule, path=sf.path, line=line, message=message)
        if rule != "bad-allow":
            reason = self.allow_reason(sf, line, rule)
            if reason is not None:
                f.suppressed = True
                f.reason = reason
        self.findings.append(f)

    # ---- per-rule passes --------------------------------------------------

    def in_digest_scope(self, path: str) -> bool:
        return self.force_digest_scope or any(
            path.startswith(d) for d in self.digest_scope)

    def rule_unordered_iteration(self, sf: SourceFile, unordered_names):
        if not self.in_digest_scope(sf.path):
            return
        code = sf.code
        # Range-for over an unordered container (by name or inline type).
        for m in re.finditer(r"\bfor\s*\(", code):
            open_paren = code.find("(", m.start())
            close = match_paren(code, open_paren)
            if close is None:
                continue
            inner = code[open_paren + 1:close - 1]
            # Top-level ':' (ignoring '::') marks a range-for.
            depth, range_expr = 0, None
            i = 0
            while i < len(inner):
                c = inner[i]
                if c in "<([{":
                    depth += 1
                elif c in ">)]}":
                    depth -= 1
                elif c == ":" and depth == 0:
                    if i + 1 < len(inner) and inner[i + 1] == ":":
                        i += 2
                        continue
                    if i > 0 and inner[i - 1] == ":":
                        i += 1
                        continue
                    range_expr = inner[i + 1:]
                    break
                i += 1
            if range_expr is None:
                continue
            if "sorted_view" in range_expr or "sorted_keys" in range_expr:
                continue
            idents = set(IDENT_RE.findall(range_expr))
            inline_unordered = any(t + "<" in range_expr.replace(" ", "")
                                   for t in UNORDERED_TYPES)
            hit = sorted(idents & unordered_names)
            if hit or inline_unordered:
                what = hit[0] if hit else "an unordered container"
                self.emit(sf, line_of(code, m.start()), "unordered-iteration",
                          f"range-for over '{what}' — iteration order is not "
                          "deterministic; use det::sorted_view/sorted_keys "
                          "(util/ordered.h) or annotate why order cannot "
                          "matter")
        # Iterator loops: name.begin() / name->begin() on an unordered name.
        for m in re.finditer(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*"
                             r"c?begin\s*\(", code):
            if m.group(1) in unordered_names:
                self.emit(sf, line_of(code, m.start()), "unordered-iteration",
                          f"iterator walk over '{m.group(1)}' — iteration "
                          "order is not deterministic; use det::sorted_view/"
                          "sorted_keys (util/ordered.h) or annotate why "
                          "order cannot matter")

    def rule_pointer_keyed(self, sf: SourceFile, decls):
        for line, kw, key_type in decls:
            kt = key_type.replace(" ", "")
            if kt.endswith("*") or re.match(
                    r"(std::)?(shared_ptr|unique_ptr|weak_ptr)<", kt):
                self.emit(sf, line, "pointer-keyed-container",
                          f"{kw} keyed by '{key_type.strip()}' — addresses "
                          "differ run to run, so ordering/hashing over them "
                          "is nondeterministic; key by a stable id "
                          "(TaggedId) instead")

    def rule_rng_discipline(self, sf: SourceFile):
        code = sf.code
        for engine in BANNED_ENGINES:
            for m in re.finditer(r"\bstd\s*::\s*" + engine + r"\b", code):
                self.emit(sf, line_of(code, m.start()), "rng-discipline",
                          f"std::{engine} is banned — draw from a Simulator "
                          "stream (Rng::split with a named RngStreamId)")
        for m in re.finditer(r"\b(srand|rand)\s*\(", code):
            self.emit(sf, line_of(code, m.start()), "rng-discipline",
                      f"{m.group(1)}() is banned — draw from a Simulator "
                      "stream (Rng::split with a named RngStreamId)")
        if sf.path not in RNG_CONSTRUCTION_ALLOWLIST:
            for m in re.finditer(r"\bRng\s*[({]", code):
                # `class Rng {` / `struct Rng {` define, not construct.
                lead = code[max(0, m.start() - 16):m.start()]
                if re.search(r"\b(class|struct)\s+$", lead):
                    continue
                self.emit(sf, line_of(code, m.start()), "rng-discipline",
                          "direct Rng construction — split from a Simulator "
                          "stream so the seed plumbing stays auditable")
        for m in re.finditer(r"\.\s*split\s*\(\s*\d", code):
            self.emit(sf, line_of(code, m.start()), "rng-discipline",
                      "split(<bare integer>) — use a named RngStreamId so "
                      "stream tags cannot collide")

    def rule_wall_clock(self, sf: SourceFile):
        if sf.path in WALL_CLOCK_ALLOWLIST:
            return
        code = sf.code
        for clock in WALL_CLOCKS:
            for m in re.finditer(r"\b" + clock + r"\b", code):
                self.emit(sf, line_of(code, m.start()), "wall-clock",
                          f"std::chrono::{clock} outside harness timing — "
                          "sim code tells time with Simulator::now()")
        for m in re.finditer(r"\b(gettimeofday|clock_gettime|timespec_get)"
                             r"\s*\(", code):
            self.emit(sf, line_of(code, m.start()), "wall-clock",
                      f"{m.group(1)}() outside harness timing — sim code "
                      "tells time with Simulator::now()")
        for m in re.finditer(r"(?<![A-Za-z0-9_])time\s*\(\s*(nullptr|NULL|0)?"
                             r"\s*\)", code):
            self.emit(sf, line_of(code, m.start()), "wall-clock",
                      "time() outside harness timing — sim code tells time "
                      "with Simulator::now()")
        for m in re.finditer(r"(?<![A-Za-z0-9_:.>])clock\s*\(\s*\)", code):
            self.emit(sf, line_of(code, m.start()), "wall-clock",
                      "clock() outside harness timing — sim code tells time "
                      "with Simulator::now()")

    def rule_send_kind(self, sf: SourceFile):
        code = sf.code
        # Frame sends must receive an explicit kind argument.
        for m in re.finditer(r"\b(broadcast_each|unicast_frame)\s*\(", code):
            open_paren = code.find("(", m.start())
            close = match_paren(code, open_paren)
            args = code[open_paren + 1:(close or open_paren + 1) - 1]
            if "PacketKind" not in args and "kind" not in args:
                self.emit(sf, line_of(code, m.start()), "send-kind",
                          f"{m.group(1)} without an explicit PacketKind "
                          "argument — the per-kind channel ledger cannot "
                          "account this frame")
        # make_packet's first argument is the kind.
        for m in re.finditer(r"\bmake_packet\s*\(", code):
            open_paren = code.find("(", m.start())
            close = match_paren(code, open_paren)
            if close is None:
                continue
            first = split_top_level(code[open_paren + 1:close - 1])[0]
            if "PacketKind" not in first and "kind" not in first:
                self.emit(sf, line_of(code, m.start()), "send-kind",
                          "make_packet whose first argument is not an "
                          "explicit PacketKind")
        # Bare `Packet p;` declarations must assign .kind immediately (the
        # factory idiom) or carry an ALLOW (carrier-slot members).
        if sf.path == "src/net/packet.h":
            return
        for m in re.finditer(r"\bPacket\s+([A-Za-z_][A-Za-z0-9_]*)\s*"
                             r"(;|\{\s*\}\s*;)", code):
            name = m.group(1)
            decl_line = line_of(code, m.start())
            window = sf.code.split("\n")[decl_line:decl_line + 8]
            assigns_kind = any(
                re.search(r"\b" + re.escape(name) + r"\s*\.\s*kind\s*=", w)
                for w in window)
            if not assigns_kind:
                self.emit(sf, decl_line, "send-kind",
                          f"'Packet {name};' defaults kind to kNone — build "
                          "packets through make_packet(PacketKind::k…) or "
                          "assign .kind immediately")

    # ---- driver -----------------------------------------------------------

    def lint_file(self, rel: str):
        sf = load_file(self.root, rel)
        names, _aliases, decls = collect_container_decls(sf)
        # A .cpp shares member declarations with its own header (and vice
        # versa): rsu_agent.cpp iterating a set declared in rsu_agent.h must
        # still be seen.
        stem, ext = os.path.splitext(rel)
        sibling = stem + (".h" if ext == ".cpp" else ".cpp")
        if os.path.exists(os.path.join(self.root, sibling)):
            sib = load_file(self.root, sibling)
            sib_names, _, _ = collect_container_decls(sib)
            names |= sib_names
        self.check_allow_syntax(sf)
        self.rule_unordered_iteration(sf, names)
        self.rule_pointer_keyed(sf, decls)
        self.rule_rng_discipline(sf)
        self.rule_wall_clock(sf)
        self.rule_send_kind(sf)


def gather_sources(root: str, paths):
    rels = []
    for p in paths:
        full = os.path.join(root, p) if not os.path.isabs(p) else p
        if os.path.isfile(full):
            rels.append(os.path.relpath(full, root))
        else:
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith((".h", ".hpp", ".cc", ".cpp", ".cxx")):
                        rels.append(
                            os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(set(r.replace(os.sep, "/") for r in rels))


def run_libclang(root, rels, linter):
    """AST-accurate pass: re-checks unordered iteration and pointer keys with
    resolved types. Additive — textual findings stay; this catches what text
    cannot (aliases across headers, auto-deduced range types)."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError as e:
        raise RuntimeError(
            "libclang frontend requested but clang.cindex is not importable "
            f"({e}); pip install libclang, or use --frontend=textual") from e
    index = cindex.Index.create()
    args = ["-std=c++20", "-I", os.path.join(root, "src")]
    seen = {f.key() for f in linter.findings}
    for rel in rels:
        if not rel.endswith((".cc", ".cpp", ".cxx")):
            continue
        tu = index.parse(os.path.join(root, rel), args=args)
        sf = load_file(root, rel)
        for cur in tu.cursor.walk_preorder():
            if cur.location.file is None:
                continue
            cur_rel = os.path.relpath(cur.location.file.name, root)
            if cur_rel != rel:
                continue
            if cur.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT and \
                    linter.in_digest_scope(rel):
                children = list(cur.get_children())
                if not children:
                    continue
                range_init = children[-2] if len(children) >= 2 else None
                type_spelling = (range_init.type.spelling
                                 if range_init is not None else "")
                tokens = " ".join(t.spelling for t in cur.get_tokens())
                if any(t in type_spelling for t in UNORDERED_TYPES) and \
                        "sorted_view" not in tokens and \
                        "sorted_keys" not in tokens:
                    f = Finding("unordered-iteration", rel.replace(os.sep, "/"),
                                cur.location.line,
                                f"[libclang] range-for over {type_spelling}")
                    if f.key() in seen:
                        continue
                    reason = linter.allow_reason(sf, f.line,
                                                 "unordered-iteration")
                    if reason is not None:
                        f.suppressed, f.reason = True, reason
                    linter.findings.append(f)
                    seen.add(f.key())
    return True


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: two levels up from this "
                         "script)")
    ap.add_argument("--frontend", choices=("textual", "libclang"),
                    default="textual")
    ap.add_argument("--report", metavar="OUT.json",
                    help="write a machine-readable findings report")
    ap.add_argument("--all-rules-everywhere", action="store_true",
                    help="treat every input as digest-affecting (fixtures/"
                         "tests)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:24s} {desc}")
        return 0

    root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src"]
    rels = gather_sources(root, paths)
    if not rels:
        print(f"determinism-lint: no sources under {paths}", file=sys.stderr)
        return 2

    linter = Linter(root, force_digest_scope=args.all_rules_everywhere)
    for rel in rels:
        linter.lint_file(rel)
    if args.frontend == "libclang":
        run_libclang(root, rels, linter)

    active = [f for f in linter.findings if not f.suppressed]
    suppressed = [f for f in linter.findings if f.suppressed]
    if args.report:
        doc = {
            "schema": "hlsrg-determinism-lint/v1",
            "frontend": args.frontend,
            "files_scanned": len(rels),
            "findings": [dataclasses.asdict(f) for f in active],
            "suppressed": [dataclasses.asdict(f) for f in suppressed],
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(doc, out, indent=2)
            out.write("\n")
    if not args.quiet:
        for f in active:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        for f in suppressed:
            print(f"note: {f.path}:{f.line}: [{f.rule}] suppressed: "
                  f"{f.reason}")
        print(f"determinism-lint: {len(rels)} files, {len(active)} findings, "
              f"{len(suppressed)} suppressed")
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
