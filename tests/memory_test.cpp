// Tests for the million-entity memory layer (DESIGN.md §15): the arena
// table family fuzzed against std::map, the open-addressing map's tombstone
// compaction fuzzed against std::unordered_map, the expiry wheel against
// the full-scan eviction predicate, and the flat agent-side containers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/location_table.h"
#include "util/arena_table.h"
#include "util/expiry_wheel.h"
#include "util/flat_table.h"

namespace hlsrg {
namespace {

// SplitMix64: a self-contained deterministic stream for fuzz sequences, so
// these tests never touch the simulator's seeded RNG discipline.
struct Mix64 {
  std::uint64_t s;
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// --- ArenaTable ------------------------------------------------------------

TEST(ArenaTableTest, FuzzMatchesStdMap) {
  ArenaTable<std::uint64_t, std::uint64_t> table;
  std::map<std::uint64_t, std::uint64_t> model;
  Mix64 rng{1234};
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % 512;  // small key space forces collisions
    const std::uint64_t op = (r >> 32) % 10;
    if (op < 6) {
      const std::uint64_t value = rng.next();
      const bool inserted = table.upsert(key, value);
      EXPECT_EQ(inserted, model.find(key) == model.end());
      model[key] = value;
    } else if (op < 9) {
      EXPECT_EQ(table.erase(key), model.erase(key) == 1);
    } else {
      const std::uint64_t* rec = table.find(key);
      const auto it = model.find(key);
      ASSERT_EQ(rec != nullptr, it != model.end());
      if (rec != nullptr) {
        EXPECT_EQ(*rec, it->second);
      }
    }
    ASSERT_EQ(table.size(), model.size());
  }
  // snapshot() is key-sorted, so it must mirror the model's iteration.
  const std::vector<std::uint64_t> snap = table.snapshot();
  ASSERT_EQ(snap.size(), model.size());
  std::size_t i = 0;
  for (const auto& [key, value] : model) EXPECT_EQ(snap[i++], value);
}

TEST(ArenaTableTest, RecordAddressesSurviveGrowth) {
  // Pages come whole from the arena; growing the table must never move an
  // existing record (agents hold pointers across inserts).
  ArenaTable<std::uint64_t, std::uint64_t> table;
  table.upsert(5, 55);
  const std::uint64_t* early = table.find(5);
  for (std::uint64_t k = 1000; k < 6000; ++k) table.upsert(k, k);
  EXPECT_EQ(table.find(5), early);
  EXPECT_EQ(*early, 55u);
}

TEST(ArenaTableTest, ClearRecyclesPagesWithoutGrowingTheArena) {
  ArenaTable<std::uint64_t, std::uint64_t> table;
  for (std::uint64_t k = 0; k < 4096; ++k) table.upsert(k, k);
  const std::size_t bytes_full = table.bytes();
  table.clear();
  EXPECT_TRUE(table.empty());
  for (std::uint64_t k = 0; k < 4096; ++k) table.upsert(k, k + 1);
  // Refilling to the same population reuses the recycled pages.
  EXPECT_EQ(table.bytes(), bytes_full);
  EXPECT_EQ(*table.find(7), 8u);
}

TEST(ArenaTableTest, ReleaseReturnsAllMemoryAndTheTableStaysUsable) {
  ArenaTable<std::uint64_t, std::uint64_t> table;
  for (std::uint64_t k = 0; k < 1000; ++k) table.upsert(k, k);
  EXPECT_GT(table.bytes(), 0u);
  table.release();
  EXPECT_TRUE(table.empty());
  // Unlike clear(), release() returns the pages, index, and arena chunks.
  EXPECT_EQ(table.bytes(), 0u);
  table.upsert(42, 7);
  EXPECT_EQ(*table.find(42), 7u);
  // A released-then-small table pays the small-table floor, not its old
  // 1000-entry peak.
  EXPECT_LT(table.bytes(), 2048u);
}

TEST(ArenaTableTest, SmallTablePaysTheSmallPageFloor) {
  // The geometric page ramp: three records must not cost a full
  // 256-record page (the per-vehicle L1 table is the common case, and at
  // 100k vehicles the occupied-but-small floor dominates bytes/vehicle).
  using Table = ArenaTable<std::uint64_t, std::uint64_t>;
  Table table;
  for (std::uint64_t k = 0; k < 3; ++k) table.upsert(k, k);
  EXPECT_LT(table.bytes(), Table::kPageRecords * sizeof(Table::Entry));
}

TEST(ArenaTableTest, UnsortedRecordsIsAPermutationOfSnapshot) {
  ArenaTable<std::uint64_t, std::uint64_t> table;
  Mix64 rng{5};
  for (int i = 0; i < 700; ++i) table.upsert(rng.next() % 900, rng.next());
  for (int i = 0; i < 300; ++i) table.erase(rng.next() % 900);
  std::vector<std::uint64_t> dense = table.unsorted_records();
  std::vector<std::uint64_t> sorted = table.snapshot();
  ASSERT_EQ(dense.size(), table.size());
  std::sort(dense.begin(), dense.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(dense, sorted);
}

// --- OpenAddressMap --------------------------------------------------------

TEST(OpenAddressMapTest, EraseChurnFuzzMatchesUnorderedMap) {
  OpenAddressMap<std::uint64_t, std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> model;
  Mix64 rng{99};
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t r = rng.next();
    const std::uint64_t key = r % 300;
    switch ((r >> 40) % 3) {
      case 0: {
        const auto value = static_cast<std::uint32_t>(step);
        // find_or_insert keeps an existing value, like emplace.
        map.find_or_insert(key, value);
        model.emplace(key, value);
        break;
      }
      case 1:
        EXPECT_EQ(map.erase(key), model.erase(key) == 1);
        break;
      default: {
        const std::uint32_t* found = map.find(key);
        const auto it = model.find(key);
        ASSERT_EQ(found != nullptr, it != model.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), model.size());
  }
}

TEST(OpenAddressMapTest, TombstoneChurnCompactsInsteadOfGrowing) {
  OpenAddressMap<std::uint64_t, std::uint32_t> map;
  for (std::uint64_t k = 0; k < 64; ++k) map.find_or_insert(k, 0);
  // Steady-state population under heavy insert+erase churn with
  // never-repeating keys: every erase leaves a tombstone on a fresh slot.
  std::size_t warm_capacity = 0;
  for (std::uint64_t round = 0; round < 10000; ++round) {
    map.find_or_insert(1000 + round, 1);
    EXPECT_TRUE(map.erase(1000 + round));
    if (round == 100) warm_capacity = map.capacity();
  }
  EXPECT_EQ(map.size(), 64u);
  // The occupancy trigger must compact tombstones in place, not double the
  // table forever (the pre-PR-10 map leaked dead slots into the load).
  EXPECT_LE(map.capacity(), warm_capacity);
  // And the live entries all survived the compactions.
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_NE(map.find(k), nullptr);
}

TEST(OpenAddressMapTest, ExtremeKeysAreOrdinary) {
  // No reserved sentinel key: 0 and ~0 behave like any other bit pattern
  // (slot liveness lives in the state array, not in the key).
  OpenAddressMap<std::uint64_t, std::uint32_t> map;
  map.find_or_insert(0, 1);
  map.find_or_insert(~std::uint64_t{0}, 2);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 1u);
  ASSERT_NE(map.find(~std::uint64_t{0}), nullptr);
  EXPECT_EQ(*map.find(~std::uint64_t{0}), 2u);
  EXPECT_TRUE(map.erase(0));
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_NE(map.find(~std::uint64_t{0}), nullptr);
}

// --- ExpiryWheel -----------------------------------------------------------

TEST(ExpiryWheelTest, DrainMatchesFullScanPredicate) {
  // The wheel must evict exactly the full-scan set {time < cutoff}, across
  // bucket boundaries and with out-of-order notes (handoff merges backfill
  // old timestamps).
  ExpiryWheel wheel;
  std::vector<std::pair<std::uint64_t, std::int64_t>> pending;
  Mix64 rng{7};
  for (int round = 1; round <= 40; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t key = rng.next() % 1000;
      const std::int64_t time =
          static_cast<std::int64_t>(rng.next() % 5000000) +
          static_cast<std::int64_t>(round) * 2000000;
      wheel.note(key, time);
      pending.emplace_back(key, time);
    }
    const std::int64_t cutoff = static_cast<std::int64_t>(round) * 2000000;
    std::vector<std::pair<std::uint64_t, std::int64_t>> drained;
    wheel.drain(cutoff, [&](std::uint64_t key, std::int64_t time) {
      drained.emplace_back(key, time);
    });
    std::vector<std::pair<std::uint64_t, std::int64_t>> expected;
    std::vector<std::pair<std::uint64_t, std::int64_t>> survivors;
    for (const auto& item : pending) {
      (item.second < cutoff ? expected : survivors).push_back(item);
    }
    std::sort(drained.begin(), drained.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(drained, expected) << "round " << round;
    pending = std::move(survivors);
    ASSERT_EQ(wheel.pending(), pending.size());
  }
}

// --- LocationTable purge = wheel drain + live-record confirmation ----------

TEST(LocationTableTest, WheelPurgeMatchesFullScanEviction) {
  // End-to-end equivalence on the real table: record() overwrites make wheel
  // items stale, and purge() must still evict exactly the records the old
  // O(table) scan would have (time + expiry < now).
  L1Table table;
  std::map<VehicleId, L1Record> model;
  Mix64 rng{21};
  SimTime now = SimTime::from_sec(0.0);
  const SimTime expiry = SimTime::from_sec(132.0);
  for (int round = 0; round < 120; ++round) {
    now = now + SimTime::from_sec(10.0);
    for (int i = 0; i < 50; ++i) {
      L1Record rec;
      rec.vehicle = VehicleId{static_cast<std::uint32_t>(rng.next() % 400)};
      // Timestamps jitter up to 200 s behind `now`: some records arrive
      // already expired, some lose the newest-wins race.
      rec.time = now - SimTime::from_ms(static_cast<double>(rng.next() % 200000));
      rec.pos = Vec2{static_cast<double>(round), static_cast<double>(i)};
      table.record(rec);
      const auto it = model.find(rec.vehicle);
      if (it == model.end() || it->second.time < rec.time) {
        model[rec.vehicle] = rec;
      }
    }
    table.purge(now, expiry);
    for (auto it = model.begin(); it != model.end();) {
      if (it->second.time < now - expiry) {
        it = model.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(table.size(), model.size()) << "round " << round;
    for (const auto& [vehicle, rec] : model) {
      const L1Record* got = table.find(vehicle);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->time.us(), rec.time.us());
      EXPECT_EQ(got->pos.x, rec.pos.x);
    }
  }
}

// --- SmallFlatMap / SortedIdSet -------------------------------------------

TEST(SmallFlatMapTest, InsertFindEraseMatchesMap) {
  SmallFlatMap<std::uint32_t, int> map;
  std::map<std::uint32_t, int> model;
  Mix64 rng{3};
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t r = rng.next();
    const auto key = static_cast<std::uint32_t>(r % 40);
    if ((r >> 32) % 2 == 0) {
      map[key] = step;
      model[key] = step;
    } else {
      EXPECT_EQ(map.erase(key), model.erase(key) == 1);
    }
    ASSERT_EQ(map.size(), model.size());
    for (const auto& [k, v] : model) {
      const int* got = map.find(k);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, v);
    }
  }
}

TEST(SmallFlatMapTest, OperatorIndexDefaultInserts) {
  SmallFlatMap<std::uint32_t, int> map;
  EXPECT_EQ(map[9], 0);
  EXPECT_EQ(map.size(), 1u);
  map[9] = 4;
  EXPECT_EQ(map[9], 4);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(9));
  EXPECT_FALSE(map.contains(8));
}

TEST(SortedIdSetTest, InsertReportsNoveltyAndContainsAgrees) {
  SortedIdSet<std::uint64_t> set;
  EXPECT_TRUE(set.insert(10));
  EXPECT_TRUE(set.insert(5));
  EXPECT_TRUE(set.insert(20));
  EXPECT_FALSE(set.insert(10));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.contains(20));
  EXPECT_FALSE(set.contains(11));
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(5));
}

// --- bytes() accounting ----------------------------------------------------

TEST(MemoryAccountingTest, TableBytesGrowWithPopulation) {
  L1Table table;
  const std::size_t empty_bytes = table.bytes();
  for (std::uint32_t i = 0; i < 5000; ++i) {
    L1Record rec;
    rec.vehicle = VehicleId{i};
    rec.time = SimTime::from_sec(1.0);
    table.record(rec);
  }
  EXPECT_GT(table.bytes(), empty_bytes);
  // 5000 records must account for at least their payload bytes.
  EXPECT_GE(table.bytes(), 5000 * sizeof(L1Record));

  FlatTable<VehicleId, int> flat;
  EXPECT_EQ(flat.bytes(), 0u);
  flat.upsert(VehicleId{std::uint32_t{1}}, 7);
  EXPECT_GT(flat.bytes(), 0u);
}

}  // namespace
}  // namespace hlsrg
