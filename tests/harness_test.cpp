// Tests for harness: parallel utilities, the replica runner, and the
// scenario/world plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "roadnet/map_builder.h"
#include "roadnet/map_io.h"

namespace hlsrg {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadPath) {
  std::vector<int> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> want(10);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(ParallelForTest, ZeroJobsIsNoop) {
  parallel_for(0, 4, [&](std::size_t) { FAIL(); });
}

TEST(ParallelForTest, MoreThreadsThanJobs) {
  std::atomic<int> count{0};
  parallel_for(3, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForTest, ActuallyRunsConcurrently) {
  // With 4 workers and 4 jobs that wait on a shared barrier, the jobs can
  // only finish if they run at the same time.
  std::atomic<int> arrived{0};
  parallel_for(4, 4, [&](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(), 4);
}

TEST(DefaultThreadCountTest, Bounds) {
  EXPECT_GE(default_thread_count(100), 1u);
  EXPECT_LE(default_thread_count(2), 2u);
  EXPECT_EQ(default_thread_count(1), 1u);
}

// --- scenario / world ----------------------------------------------------------

TEST(ScenarioTest, PaperScenarioDefaults) {
  const ScenarioConfig cfg = paper_scenario(500, 9);
  EXPECT_EQ(cfg.vehicles, 500);
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.map.size_m, 2000.0);
  EXPECT_DOUBLE_EQ(cfg.radio.range_m, 500.0);
  EXPECT_DOUBLE_EQ(cfg.mobility.lights.red_sec, 50.0);
  EXPECT_EQ(cfg.end_time(), cfg.warmup + cfg.query_window + cfg.grace);
}

TEST(WorldTest, WorkloadSizeMatchesSourceFraction) {
  ScenarioConfig cfg = paper_scenario(300, 2);
  World world(cfg, Protocol::kHlsrg);
  EXPECT_EQ(world.planned_queries(), 30);
  world.run();
  EXPECT_EQ(world.metrics().queries_issued, 30u);
}

TEST(WorldTest, QueriesNeverSelfTarget) {
  // Exercised indirectly: run a tiny scenario with 2 vehicles and 100%
  // sources; src != dst must hold (self-queries would be degenerate).
  ScenarioConfig cfg = paper_scenario(2, 4);
  cfg.source_fraction = 1.0;
  World world(cfg, Protocol::kHlsrg);
  EXPECT_EQ(world.planned_queries(), 2);
  world.run();  // must not trip any HLSRG_CHECK
}

TEST(WorldTest, RlsmpWorldHasCells) {
  ScenarioConfig cfg = paper_scenario(50, 6);
  World world(cfg, Protocol::kRlsmp);
  EXPECT_NE(world.cells(), nullptr);
  EXPECT_EQ(world.rsus(), nullptr);
}

TEST(WorldTest, HlsrgWorldHasRsus) {
  ScenarioConfig cfg = paper_scenario(50, 6);
  World world(cfg, Protocol::kHlsrg);
  EXPECT_NE(world.rsus(), nullptr);
  EXPECT_EQ(world.cells(), nullptr);
}

TEST(WorldTest, BeaconModeRunsEndToEnd) {
  ScenarioConfig cfg = paper_scenario(150, 7);
  cfg.beacons.enabled = true;
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  // Beacons add broadcast traffic well beyond the protocol's own.
  ScenarioConfig off = paper_scenario(150, 7);
  World quiet(off, Protocol::kHlsrg);
  quiet.run();
  EXPECT_GT(m.radio_broadcasts, 2 * quiet.metrics().radio_broadcasts);
}

TEST(WorldTest, LoadsMapFromFile) {
  // Save a generated map, then build a world from the file: geometry and
  // partition must match the generated original.
  const RoadNetwork generated = build_manhattan_map({.size_m = 1000});
  const std::string path = ::testing::TempDir() + "/hlsrg_world_map.map";
  std::string error;
  ASSERT_TRUE(save_map_file(generated, path, &error)) << error;

  ScenarioConfig cfg = paper_scenario(100, 8);
  cfg.map_file = path;
  World world(cfg, Protocol::kHlsrg);
  EXPECT_EQ(world.network().intersection_count(),
            generated.intersection_count());
  EXPECT_EQ(world.hierarchy().cols(GridLevel::kL1), 2);
  world.run_until(SimTime::from_sec(10));  // runs end to end
}

// --- replica runner ----------------------------------------------------------------

TEST(RunnerTest, ReplicasUseDistinctSeeds) {
  ScenarioConfig cfg = paper_scenario(150, 40);
  cfg.grace = SimTime::from_sec(30);
  const ReplicaSet set = run_replicas(cfg, Protocol::kHlsrg, 3, 3);
  ASSERT_EQ(set.replicas.size(), 3u);
  // Different seeds -> different radio activity.
  EXPECT_FALSE(set.replicas[0].radio_broadcasts ==
                   set.replicas[1].radio_broadcasts &&
               set.replicas[1].radio_broadcasts ==
                   set.replicas[2].radio_broadcasts);
}

TEST(RunnerTest, MemoryTelemetryIsStamped) {
  // Pins the peak_rss_bytes stamping fix: every replica's engine stats and
  // the run-level sample must be populated, engine_total must carry the
  // run-level RSS (defined semantics), and table_bytes must reflect the
  // protocol tables + registry of one replica.
  ScenarioConfig cfg = paper_scenario(100, 44);
  cfg.grace = SimTime::from_sec(30);
  const ReplicaSet set = run_replicas(cfg, Protocol::kHlsrg, 2, 1);
  EXPECT_GT(set.peak_rss_bytes, 0u);
  EXPECT_EQ(set.engine_total.peak_rss_bytes, set.peak_rss_bytes);
  for (const EngineStats& e : set.engine) {
    EXPECT_GT(e.peak_rss_bytes, 0u);
    EXPECT_LE(e.peak_rss_bytes, set.peak_rss_bytes);
    EXPECT_GT(e.table_bytes, 0u);
  }
  // engine_total merges table_bytes by max over replicas.
  std::uint64_t max_table = 0;
  for (const EngineStats& e : set.engine) {
    max_table = std::max(max_table, e.table_bytes);
  }
  EXPECT_EQ(set.engine_total.table_bytes, max_table);
}

TEST(RunnerTest, MergedEqualsSumOfReplicas) {
  ScenarioConfig cfg = paper_scenario(100, 41);
  cfg.grace = SimTime::from_sec(30);
  const ReplicaSet set = run_replicas(cfg, Protocol::kRlsmp, 3, 3);
  std::uint64_t updates = 0, queries = 0;
  for (const RunMetrics& m : set.replicas) {
    updates += m.update_packets_originated;
    queries += m.queries_issued;
  }
  EXPECT_EQ(set.merged.update_packets_originated, updates);
  EXPECT_EQ(set.merged.queries_issued, queries);
}

TEST(RunnerTest, ParallelEqualsSerial) {
  // The parallel runner must produce bit-identical metrics to a serial run:
  // replicas share nothing.
  ScenarioConfig cfg = paper_scenario(100, 42);
  cfg.grace = SimTime::from_sec(30);
  const ReplicaSet par = run_replicas(cfg, Protocol::kHlsrg, 4, 4);
  const ReplicaSet ser = run_replicas(cfg, Protocol::kHlsrg, 4, 1);
  ASSERT_EQ(par.replicas.size(), ser.replicas.size());
  for (std::size_t i = 0; i < par.replicas.size(); ++i) {
    EXPECT_EQ(par.replicas[i].update_packets_originated,
              ser.replicas[i].update_packets_originated);
    EXPECT_EQ(par.replicas[i].queries_succeeded,
              ser.replicas[i].queries_succeeded);
    EXPECT_EQ(par.replicas[i].radio_broadcasts,
              ser.replicas[i].radio_broadcasts);
  }
}

TEST(RunnerTest, MeansAreConsistent) {
  ScenarioConfig cfg = paper_scenario(100, 43);
  cfg.grace = SimTime::from_sec(30);
  const ReplicaSet set = run_replicas(cfg, Protocol::kHlsrg, 2, 2);
  double sum = 0;
  for (const RunMetrics& m : set.replicas) {
    sum += static_cast<double>(m.total_update_overhead());
  }
  EXPECT_DOUBLE_EQ(set.mean_update_overhead(), sum / 2.0);
  EXPECT_DOUBLE_EQ(set.mean_success_rate(), set.merged.success_rate());
}

TEST(RunnerTest, ComparisonRunsBothProtocols) {
  ScenarioConfig cfg = paper_scenario(100, 44);
  cfg.grace = SimTime::from_sec(30);
  const Comparison c = run_comparison(cfg, 2, 2);
  EXPECT_EQ(c.hlsrg.replicas.size(), 2u);
  EXPECT_EQ(c.rlsmp.replicas.size(), 2u);
  EXPECT_GT(c.hlsrg.merged.queries_issued, 0u);
  EXPECT_GT(c.rlsmp.merged.queries_issued, 0u);
}

}  // namespace
}  // namespace hlsrg
