// Deeper behavioural tests of the HLSRG machinery: RSU table schemas and
// feeding paths, election/claim mechanics, the directional notification, and
// rule-engine properties over randomly sampled intersection passes.
#include <gtest/gtest.h>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "harness/world.h"

namespace hlsrg {
namespace {

TEST(RsuBehaviorTest, L2TablesCarryTheRecordsGrid) {
  // Every L2 summary must reference the L1 grid the *record* was made in —
  // that is what the query path descends to.
  ScenarioConfig cfg = paper_scenario(400, 81);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(120));
  auto& svc = dynamic_cast<HlsrgService&>(world.service());
  const auto& h = world.hierarchy();
  for (const auto& rsu : svc.rsu_agents()) {
    if (rsu.level() != GridLevel::kL2) continue;
    for (const auto& [vid, summary] : rsu.l2_table()) {
      EXPECT_GE(summary.l1.col, 0);
      EXPECT_LT(summary.l1.col, h.cols(GridLevel::kL1));
      EXPECT_GE(summary.l1.row, 0);
      EXPECT_LT(summary.l1.row, h.rows(GridLevel::kL1));
      EXPECT_LE(summary.time, world.sim().now());
    }
  }
}

TEST(RsuBehaviorTest, L3TablesFedByL2Pushes) {
  ScenarioConfig cfg = paper_scenario(400, 82);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(120));
  auto& svc = dynamic_cast<HlsrgService&>(world.service());
  for (const auto& rsu : svc.rsu_agents()) {
    if (rsu.level() != GridLevel::kL3) continue;
    EXPECT_GT(rsu.l3_table().size(), 0u);
    for (const auto& [vid, summary] : rsu.l3_table()) {
      // Owner region on a 2 km map is always (0,0) — the only L3.
      EXPECT_EQ(summary.owner_l3, (GridCoord{0, 0}));
    }
  }
}

TEST(RsuBehaviorTest, NoAggregationTrafficWithoutRsus) {
  ScenarioConfig cfg = paper_scenario(300, 83);
  cfg.hlsrg.use_rsus = false;
  World world(cfg, Protocol::kHlsrg);
  world.run();
  // Hand-offs still happen (vehicle-to-vehicle), but nothing rides the wire.
  EXPECT_EQ(world.metrics().wired_messages, 0u);
}

TEST(ElectionBehaviorTest, AtMostOneServerClaimPerAttemptUsually) {
  // Claims suppress duplicate servers. Some duplicates survive radio loss,
  // but the claim mechanism must keep them rare: far fewer elections won
  // than election participants.
  ScenarioConfig cfg = paper_scenario(500, 84);
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  const auto elections_won = m.server_lookup_hits + m.server_lookup_misses;
  // Each query triggers at most a handful of elections across its own
  // center, the RSU descent, and the retry attempt.
  EXPECT_LT(elections_won, 12 * m.queries_issued);
}

TEST(NotificationBehaviorTest, EveryAckFollowsANotificationOrProbe) {
  ScenarioConfig cfg = paper_scenario(400, 85);
  World world(cfg, Protocol::kHlsrg);
  TraceLog trace;
  world.attach_trace(&trace);
  world.run();
  // ACKs can only be triggered by a notification reaching the target.
  EXPECT_LE(trace.count(TraceEventKind::kAckSent),
            trace.count(TraceEventKind::kNotification));
  // And successes cannot exceed ACKs.
  EXPECT_LE(world.metrics().queries_succeeded, world.metrics().acks_sent);
}

TEST(CollectionBehaviorTest, HandoffsAndPushesHappen) {
  ScenarioConfig cfg = paper_scenario(500, 86);
  World world(cfg, Protocol::kHlsrg);
  TraceLog trace;
  world.attach_trace(&trace);
  world.run_until(SimTime::from_sec(150));
  EXPECT_GT(trace.count(TraceEventKind::kTableHandoff), 0u);
  EXPECT_GT(trace.count(TraceEventKind::kTablePush), 0u);
}

TEST(CollectionBehaviorTest, CollectionTimerIsArmedOnlyAroundCenterDuty) {
  // The periodic collection tick is conditional (DESIGN.md §15): entering a
  // grid center arms it onto the fixed phase grid; leaving lets the next
  // tick lazily disarm. At any instant, center duty implies an armed timer
  // (the converse can lag by up to one push period).
  ScenarioConfig cfg = paper_scenario(300, 87);
  World world(cfg, Protocol::kHlsrg);
  auto& svc = static_cast<HlsrgService&>(world.service());
  world.run_until(SimTime::from_sec(120));
  std::size_t on_duty = 0;
  std::size_t armed = 0;
  for (int i = 0; i < cfg.vehicles; ++i) {
    const HlsrgVehicleAgent& agent =
        svc.vehicle_agent(VehicleId{static_cast<std::uint32_t>(i)});
    if (agent.in_center()) {
      ++on_duty;
      EXPECT_TRUE(agent.collection_armed())
          << "vehicle " << i << " holds center duty without a timer";
    }
    armed += agent.collection_armed() ? 1 : 0;
  }
  // Sanity: the invariant must not hold vacuously, and most of the fleet
  // must be idle (the whole point of making the timer conditional).
  EXPECT_GT(on_duty, 0u);
  EXPECT_LT(armed, static_cast<std::size_t>(cfg.vehicles) / 2);
}

// --- rule engine properties over sampled passes --------------------------------

class RulePropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RulePropertySweep, DecisionsAreInternallyConsistent) {
  const RoadNetwork net = build_manhattan_map({});
  const GridHierarchy hierarchy(net, build_partition(net));
  const TurnPolicy policy(net, {});
  const HlsrgConfig cfg;
  const UpdateRuleEngine rules(net, hierarchy, policy, cfg);

  Rng rng(GetParam());
  int sends = 0, passes = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Random pass: pick a segment, then an exit the way mobility would
    // (straight-biased, artery-biased) so the suppression claim below is
    // evaluated against realistic traffic.
    const SegmentId in{rng.uniform_u64(net.segment_count())};
    const Segment& seg = net.segment(in);
    const SegmentId out = policy.choose_exit(in, rng);
    const UpdateDecision d = rules.evaluate(seg.to, in, out);
    ++passes;
    sends += d.send ? 1 : 0;

    // Structural invariants.
    EXPECT_EQ(d.grid_changed, !(d.old_l1 == d.new_l1));
    EXPECT_EQ(d.crossing_level > 0, d.grid_changed);
    EXPECT_EQ(d.was_class1, hierarchy.on_selected_artery(seg.road));

    const bool turning = policy.is_turn(in, out);
    if (d.was_class1) {
      // Class 1 sends exactly on turns or straight L3 crossings.
      EXPECT_EQ(d.send, turning || (!turning && d.crossing_level >= 3));
    } else {
      EXPECT_EQ(d.send,
                (!turning && d.crossing_level >= 1) ||
                    (turning &&
                     hierarchy.on_selected_artery(net.segment(out).road)));
    }
  }
  // The rules must actually suppress most passes (that is their job).
  EXPECT_GT(passes, 1000);
  EXPECT_LT(sends, passes / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulePropertySweep,
                         ::testing::Values(1u, 7u, 21u, 77u));

// --- multi-L3 routing on a big map ----------------------------------------------

TEST(MultiL3Test, QueriesResolveAcrossL3Regions) {
  // A 4 km map has 2x2 L3 regions; queries whose source and target live in
  // different regions must traverse the wired L3 mesh.
  ScenarioConfig cfg = paper_scenario(700, 87);
  cfg.map.size_m = 4000.0;
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  EXPECT_GT(m.success_rate(), 0.5);
  EXPECT_GT(m.wired_messages, 0u);
}

}  // namespace
}  // namespace hlsrg
