// Tests for the observability subsystem: span trees, the metrics registry
// (histogram quantile math in particular), the Chrome-trace exporter, and
// the trace memory caps.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "harness/runner.h"
#include "harness/world.h"
#include "report/json.h"
#include "report/run_report.h"
#include "trace/chrome_trace.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hlsrg {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketIndexEdges) {
  // Bucket 0 takes v <= 0; bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_index(-5), 0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(i)), i) << i;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(i)), i) << i;
  }
}

TEST(HistogramTest, EmptyAndSingleSample) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(1234);
  // Any quantile of one sample is that sample (clamped to [min, max]).
  EXPECT_EQ(h.quantile(0.0), 1234.0);
  EXPECT_EQ(h.quantile(0.5), 1234.0);
  EXPECT_EQ(h.quantile(1.0), 1234.0);
  EXPECT_EQ(h.mean(), 1234.0);
}

TEST(HistogramTest, QuantilesBracketedByBuckets) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(v);
  // Exact values are interpolated inside power-of-two buckets; require the
  // right bucket, not the exact rank.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);  // clamped to observed max
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  EXPECT_EQ(h.quantile(0.0), 1.0);
  // Monotone in q.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(HistogramTest, MergeMatchesPooledRecording) {
  Histogram a, b, pooled;
  for (int v = 1; v <= 100; ++v) {
    a.record(v);
    pooled.record(v);
  }
  for (int v = 500; v <= 600; ++v) {
    b.record(v);
    pooled.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_EQ(a.sum(), pooled.sum());
  EXPECT_EQ(a.min(), pooled.min());
  EXPECT_EQ(a.max(), pooled.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), pooled.bucket_count(i)) << i;
  }
  EXPECT_EQ(a.quantile(0.95), pooled.quantile(0.95));
}

TEST(MetricsRegistryTest, MergeSemantics) {
  MetricsRegistry a, b;
  a.add("x.count", 2);
  b.add("x.count", 3);
  a.set_gauge("x.gauge", 1.0);
  b.set_gauge("x.gauge", 4.0);
  a.histogram("x.h")->record(10);
  b.histogram("x.h")->record(20);
  a.sample("x.s", 1.0, 5.0);
  b.sample("x.s", 1.0, 9.0);
  a.merge(b);
  EXPECT_EQ(a.counters().at("x.count"), 5u);
  EXPECT_EQ(a.gauges().at("x.gauge"), 4.0);       // max wins
  EXPECT_EQ(a.histograms().at("x.h").count(), 2u);  // pooled
  EXPECT_EQ(a.series().at("x.s").values.size(), 1u);  // first replica kept
  EXPECT_EQ(a.series().at("x.s").values[0], 5.0);
}

TEST(MetricsRegistryTest, JsonShape) {
  MetricsRegistry reg;
  reg.add("a.count", 7);
  reg.set_gauge("a.gauge", 2.5);
  reg.histogram("a.delay_us")->record(100);
  reg.sample("a.series", 5.0, 3.0);
  const JsonValue v = registry_to_json(reg);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("counters").at("a.count").as_uint64(), 7u);
  EXPECT_EQ(v.at("gauges").at("a.gauge").as_double(), 2.5);
  const JsonValue& h = v.at("histograms").at("a.delay_us");
  EXPECT_EQ(h.at("count").as_uint64(), 1u);
  EXPECT_EQ(h.at("p50").as_double(), 100.0);
  EXPECT_EQ(h.at("p99").as_double(), 100.0);
  EXPECT_EQ(v.at("series").at("a.series").at("t_sec").size(), 1u);
}

// ---------------------------------------------------------------------------
// TraceLog span mechanics
// ---------------------------------------------------------------------------

TEST(SpanLogTest, EndSpanIsIdempotent) {
  TraceLog log;
  Span s;
  s.kind = SpanKind::kGpsrRoute;
  s.query_id = 3;
  const SpanId id = log.begin_span(s, SimTime::from_sec(1.0));
  ASSERT_NE(id, kNoSpan);
  log.end_span(id, SimTime::from_sec(2.0), SpanStatus::kOk, Vec2{}, 4);
  // A later settle sweep must not relabel the self-closed leg.
  log.end_open_spans_for_query(3, SimTime::from_sec(9.0), SpanStatus::kFailed);
  const Span* got = log.span(id);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->status, SpanStatus::kOk);
  EXPECT_EQ(got->end, SimTime::from_sec(2.0));
  EXPECT_EQ(got->value, 4);
}

TEST(SpanLogTest, SettleSweepClosesOpenSpansOfQuery) {
  TraceLog log;
  Span root;
  root.kind = SpanKind::kQuery;
  root.query_id = 7;
  const SpanId r = log.begin_span(root, SimTime::from_sec(0.0));
  Span leg;
  leg.kind = SpanKind::kAckLeg;
  leg.parent = r;
  leg.query_id = 7;
  const SpanId l = log.begin_span(leg, SimTime::from_sec(0.5));
  Span unrelated;
  unrelated.kind = SpanKind::kRadioHop;  // transport: query_id stays kNoQuery
  const SpanId u = log.begin_span(unrelated, SimTime::from_sec(0.6));
  log.end_open_spans_for_query(7, SimTime::from_sec(2.0), SpanStatus::kOk);
  EXPECT_EQ(log.span(r)->status, SpanStatus::kOk);
  EXPECT_EQ(log.span(l)->status, SpanStatus::kOk);
  EXPECT_EQ(log.span(l)->end, SimTime::from_sec(2.0));
  EXPECT_EQ(log.span(u)->status, SpanStatus::kOpen);  // untouched
}

TEST(SpanLogTest, CapCountsDroppedSpansAndEvents) {
  TraceLog log;
  log.set_capacity(2, 1);
  for (int i = 0; i < 5; ++i) {
    TraceEvent e;
    e.kind = TraceEventKind::kUpdateSent;
    log.record(e);
    Span s;
    s.kind = SpanKind::kUpdate;
    log.begin_span(s, SimTime{});
  }
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped_events(), 3u);
  EXPECT_EQ(log.span_count(), 1u);
  EXPECT_EQ(log.dropped_spans(), 4u);
}

TEST(SpanLogTest, CsvUsesDotDecimalSeparator) {
  TraceLog log;
  TraceEvent e;
  e.time = SimTime::from_ms(1500);
  e.kind = TraceEventKind::kAckSent;
  e.subject = VehicleId{4u};
  e.pos = Vec2{12.5, -3.25};
  e.query_id = 9;
  log.record(e);
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("1.500000"), std::string::npos);
  EXPECT_NE(csv.find("12.500"), std::string::npos);
  EXPECT_EQ(csv.find(','), csv.find(",kind"));  // header intact
}

// ---------------------------------------------------------------------------
// End-to-end span reconstruction from a real run
// ---------------------------------------------------------------------------

class SpanRunTest : public ::testing::Test {
 protected:
  static void run(Protocol protocol, TraceLog* trace, RunMetrics* metrics) {
    ScenarioConfig cfg = paper_scenario(200, 71);
    World world(cfg, protocol);
    world.attach_trace(trace);
    *metrics = world.run();
  }

  static void check_invariants(const TraceLog& trace,
                               const RunMetrics& metrics) {
    std::size_t roots = 0;
    std::set<std::uint32_t> settled_queries;
    for (const Span& s : trace.spans()) {
      // Ids are record order.
      EXPECT_EQ(s.id, &s - trace.spans().data() + 1u);
      // Parents exist and began no later than the child.
      if (s.parent != kNoSpan) {
        const Span* p = trace.span(s.parent);
        ASSERT_NE(p, nullptr);
        EXPECT_LE(p->begin, s.begin);
      }
      // Every settled span has a nonnegative duration.
      if (s.status != SpanStatus::kOpen) {
        EXPECT_GE(s.end, s.begin);
      }
      if (s.kind == SpanKind::kQuery) {
        ++roots;
        EXPECT_EQ(s.parent, kNoSpan);
        EXPECT_NE(s.query_id, kNoQuery);
        // Queries all settle within the grace window.
        EXPECT_NE(s.status, SpanStatus::kOpen);
        settled_queries.insert(s.query_id);
      }
    }
    EXPECT_EQ(roots, metrics.queries_issued);
    EXPECT_EQ(settled_queries.size(), metrics.queries_issued);

    // Each query tree contains its root, and children_of agrees with the
    // parent links.
    for (const Span& s : trace.spans()) {
      if (s.kind != SpanKind::kQuery) continue;
      const auto tree = trace.spans_for_query(s.query_id);
      ASSERT_FALSE(tree.empty());
      EXPECT_EQ(tree.front().id, s.id);
      for (const Span& child : trace.children_of(s.id)) {
        EXPECT_EQ(child.parent, s.id);
      }
    }
  }
};

TEST_F(SpanRunTest, HlsrgSpanTreeInvariants) {
  TraceLog trace;
  RunMetrics metrics;
  run(Protocol::kHlsrg, &trace, &metrics);
  ASSERT_GT(trace.span_count(), 0u);
  check_invariants(trace, metrics);
  // The HLSRG run exercises every span kind we instrument somewhere.
  std::set<SpanKind> kinds;
  for (const Span& s : trace.spans()) kinds.insert(s.kind);
  EXPECT_TRUE(kinds.count(SpanKind::kQuery));
  EXPECT_TRUE(kinds.count(SpanKind::kUpdate));
  EXPECT_TRUE(kinds.count(SpanKind::kGpsrRoute));
  EXPECT_TRUE(kinds.count(SpanKind::kRadioHop));
  EXPECT_TRUE(kinds.count(SpanKind::kTableLookup));
  // The text dump mentions the roots.
  const std::string text = trace.span_tree_text();
  EXPECT_NE(text.find("query"), std::string::npos);
}

TEST_F(SpanRunTest, RlsmpAndFloodSpanTreeInvariants) {
  for (Protocol protocol : {Protocol::kRlsmp, Protocol::kFlood}) {
    TraceLog trace;
    RunMetrics metrics;
    run(protocol, &trace, &metrics);
    ASSERT_GT(trace.span_count(), 0u) << protocol_name(protocol);
    check_invariants(trace, metrics);
  }
}

TEST_F(SpanRunTest, QueryDelayHistogramMatchesLatencyStat) {
  ScenarioConfig cfg = paper_scenario(200, 72);
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  const auto& hists = world.sim().observability().histograms();
  ASSERT_TRUE(hists.count("query.delay_us"));
  const Histogram& h = hists.at("query.delay_us");
  EXPECT_EQ(h.count(), m.queries_succeeded);
  if (h.count() > 0) {
    EXPECT_NEAR(h.mean() / 1000.0, m.query_latency.mean_ms(),
                0.01 * m.query_latency.mean_ms() + 0.01);
  }
  // Route-hop histograms populate too.
  ASSERT_TRUE(hists.count("gpsr.route_hops"));
  EXPECT_GT(hists.at("gpsr.route_hops").count(), 0u);
}

TEST_F(SpanRunTest, WorldSamplerRecordsTimeSeries) {
  ScenarioConfig cfg = paper_scenario(150, 73);
  cfg.sample_interval = SimTime::from_sec(10.0);
  World world(cfg, Protocol::kHlsrg);
  world.run();
  const auto& series = world.sim().observability().series();
  ASSERT_TRUE(series.count("world.live_queries"));
  ASSERT_TRUE(series.count("world.table_records"));
  const TimeSeries& records = series.at("world.table_records");
  const std::size_t expected =
      static_cast<std::size_t>(cfg.end_time().sec() / 10.0);
  EXPECT_GE(records.values.size() + 1, expected);  // ties at the horizon
  EXPECT_EQ(records.values.size(), records.times_sec.size());
  // Tables fill up once updates start flowing.
  EXPECT_GT(records.values.back(), 0.0);
}

// ---------------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------------

TEST(ChromeTraceTest, DocumentRoundTripsThroughJsonParser) {
  TraceLog trace;
  RunMetrics metrics;
  {
    ScenarioConfig cfg = paper_scenario(150, 74);
    World world(cfg, Protocol::kHlsrg);
    world.attach_trace(&trace);
    metrics = world.run();
  }
  const std::vector<WallSpan> wall = {WallSpan{"build", 0, 0.0, 0.5},
                                      WallSpan{"run", 0, 0.5, 2.0}};
  const JsonValue doc = chrome_trace_document(trace, wall);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  // Well-formedness: the serialized document parses back and the traceEvents
  // array is shaped like the Chrome trace-event format.
  std::string error;
  const auto parsed = JsonValue::parse(doc.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);
  bool saw_complete = false, saw_meta = false, saw_engine = false;
  for (const JsonValue& e : events.items()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    EXPECT_TRUE(e.contains("pid"));
    // Everything but process-level metadata sits on a thread track.
    if (ph != "M" || e.at("name").as_string() == "thread_name") {
      EXPECT_TRUE(e.contains("tid"));
    }
    if (ph == "X") {
      EXPECT_GE(e.at("dur").as_double(), 0.0);
      saw_complete = true;
      if (e.at("pid").as_int() == 2) saw_engine = true;
    }
    if (ph == "M") saw_meta = true;
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_engine);
}

TEST(ChromeTraceTest, WriteChromeTraceProducesParsableFile) {
  TraceLog trace;
  Span s;
  s.kind = SpanKind::kQuery;
  s.query_id = 0;
  const SpanId id = trace.begin_span(s, SimTime::from_sec(1.0));
  trace.end_span(id, SimTime::from_sec(1.5), SpanStatus::kOk);
  const std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  std::string error;
  ASSERT_TRUE(write_chrome_trace(trace, {}, path, &error)) << error;
  const auto loaded = read_json_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->at("traceEvents").is_array());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(ObservabilityReportTest, RunReportCarriesObservabilityAndPercentiles) {
  ScenarioConfig cfg = paper_scenario(150, 75);
  const ReplicaSet set = run_replicas(cfg, Protocol::kHlsrg, 2, 2);
  EXPECT_EQ(set.phases.size(), 6u);  // build/run/digest per replica
  for (const EnginePhase& p : set.phases) {
    EXPECT_GE(p.end_sec, p.begin_sec);
  }

  RunReport report =
      make_run_report(Protocol::kHlsrg, cfg, set.merged, set.engine_total);
  report.observability = registry_to_json(set.observability);
  const JsonValue doc = report.to_json();
  ASSERT_TRUE(doc.contains("observability"));
  EXPECT_TRUE(
      doc.at("observability").at("histograms").contains("query.delay_us"));
  EXPECT_TRUE(doc.at("latency").contains("p90_ms"));
  EXPECT_TRUE(doc.at("engine").contains("trace_events_dropped"));

  // Round trip.
  RunReport back;
  std::string error;
  ASSERT_TRUE(RunReport::from_json(doc, &back, &error)) << error;
  EXPECT_FALSE(back.observability.is_null());
  EXPECT_EQ(back.latency.p90_ms, report.latency.p90_ms);

  // Derived metrics expose the delay percentiles the figures want.
  const JsonValue derived = derived_metrics_json(set.merged, false, 2);
  for (const char* key : {"query_delay_p50_ms", "query_delay_p90_ms",
                          "query_delay_p95_ms", "query_delay_p99_ms"}) {
    ASSERT_TRUE(derived.contains(key)) << key;
    EXPECT_GE(derived.at(key).as_double(), 0.0);
  }
}

}  // namespace
}  // namespace hlsrg
