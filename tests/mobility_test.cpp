// Tests for mobility: traffic lights, turn policy, vehicle kinematics, and
// movement events.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "mobility/mobility_model.h"
#include "mobility/traffic_light.h"
#include "mobility/turn_policy.h"
#include "roadnet/map_builder.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

// --- traffic lights ----------------------------------------------------------

TEST(TrafficLightTest, OppositeAxesAlternate) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = true});
  const IntersectionId node{std::size_t{3}};
  int both_green = 0, both_red = 0;
  for (int s = 0; s < 200; ++s) {
    const SimTime t = SimTime::from_sec(s);
    const bool h = plan.can_pass(node, Orientation::kHorizontal, t);
    const bool v = plan.can_pass(node, Orientation::kVertical, t);
    both_green += (h && v) ? 1 : 0;
    both_red += (!h && !v) ? 1 : 0;
  }
  EXPECT_EQ(both_green, 0);
  EXPECT_EQ(both_red, 0);
}

TEST(TrafficLightTest, RedLastsConfiguredDuration) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = true});
  const IntersectionId node{std::size_t{0}};
  // Count consecutive red seconds for the horizontal approach.
  int longest_red = 0, current = 0;
  for (int s = 0; s < 400; ++s) {
    if (!plan.can_pass(node, Orientation::kHorizontal, SimTime::from_sec(s))) {
      ++current;
      longest_red = std::max(longest_red, current);
    } else {
      current = 0;
    }
  }
  EXPECT_GE(longest_red, 49);
  EXPECT_LE(longest_red, 51);
}

TEST(TrafficLightTest, NextGreenReturnsGreenInstant) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = true});
  const IntersectionId node{std::size_t{7}};
  for (int s = 0; s < 150; s += 7) {
    const SimTime t = SimTime::from_sec(s);
    const SimTime g = plan.next_green(node, Orientation::kVertical, t);
    EXPECT_GE(g, t);
    EXPECT_TRUE(plan.can_pass(node, Orientation::kVertical, g));
    // Green must not be reachable strictly earlier (probe 1s before).
    if (g > t + SimTime::from_sec(1)) {
      EXPECT_FALSE(plan.can_pass(node, Orientation::kVertical,
                                 g - SimTime::from_sec(1)));
    }
  }
}

TEST(TrafficLightTest, DisabledAlwaysPasses) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = false});
  for (int s = 0; s < 100; ++s) {
    EXPECT_TRUE(plan.can_pass(IntersectionId{std::size_t{1}},
                              Orientation::kVertical, SimTime::from_sec(s)));
  }
}

TEST(TrafficLightTest, OtherOrientationAlwaysPasses) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = true});
  for (int s = 0; s < 100; ++s) {
    EXPECT_TRUE(plan.can_pass(IntersectionId{std::size_t{1}},
                              Orientation::kOther, SimTime::from_sec(s)));
  }
}

TEST(TrafficLightTest, PhasesDifferAcrossIntersections) {
  TrafficLightPlan plan({.red_sec = 50.0, .enabled = true});
  const SimTime t = SimTime::from_sec(10);
  int greens = 0;
  const int n = 50;
  for (std::size_t i = 0; i < n; ++i) {
    greens += plan.can_pass(IntersectionId{i}, Orientation::kHorizontal, t);
  }
  // Staggered offsets: roughly half the intersections are green, never all.
  EXPECT_GT(greens, n / 5);
  EXPECT_LT(greens, n * 4 / 5);
}

// --- turn policy ------------------------------------------------------------

class TurnPolicyTest : public ::testing::Test {
 protected:
  TurnPolicyTest() : net_(build_manhattan_map({})) {}
  RoadNetwork net_;
};

TEST_F(TurnPolicyTest, NeverUTurnsWhenAlternativesExist) {
  TurnPolicy policy(net_, {});
  Rng rng(1);
  // Pick a segment arriving at an interior intersection.
  for (std::size_t i = 0; i < net_.segment_count(); ++i) {
    const SegmentId sid{i};
    const Segment& s = net_.segment(sid);
    if (net_.intersection(s.to).out.size() < 2) continue;
    for (int k = 0; k < 20; ++k) {
      EXPECT_NE(policy.choose_exit(sid, rng), s.reverse);
    }
    break;
  }
}

TEST_F(TurnPolicyTest, DeadEndForcesUTurn) {
  RoadNetwork net;
  const auto a = net.add_intersection({0, 0});
  const auto b = net.add_intersection({100, 0});
  const RoadId r = net.add_road(RoadClass::kNormal, Orientation::kHorizontal, 0);
  const SegmentId ab = net.add_edge(r, a, b);
  net.finalize();
  TurnPolicy policy(net, {});
  Rng rng(1);
  EXPECT_EQ(policy.choose_exit(ab, rng), net.segment(ab).reverse);
}

TEST_F(TurnPolicyTest, IsTurnDetectsHeadingChange) {
  TurnPolicy policy(net_, {});
  // Find an intersection with a straight continuation and a crossing exit.
  for (std::size_t i = 0; i < net_.segment_count(); ++i) {
    const SegmentId in{i};
    const Segment& s = net_.segment(in);
    SegmentId straight, crossing;
    for (SegmentId out : net_.intersection(s.to).out) {
      if (out == s.reverse) continue;
      const double d = angle_between(s.unit_dir.angle(),
                                     net_.segment(out).unit_dir.angle());
      if (d < 0.1) straight = out;
      if (d > 1.0) crossing = out;
    }
    if (straight.valid() && crossing.valid()) {
      EXPECT_FALSE(policy.is_turn(in, straight));
      EXPECT_TRUE(policy.is_turn(in, crossing));
      return;
    }
  }
  FAIL() << "no suitable intersection found";
}

TEST_F(TurnPolicyTest, ArteryBiasIsEffective) {
  // With a huge artery weight, exits onto arteries dominate.
  TurnPolicyConfig cfg;
  cfg.artery_weight = 1000.0;
  cfg.straight_bonus = 1.0;
  TurnPolicy policy(net_, cfg);
  Rng rng(5);
  // Arrive at an artery/artery crossing from a normal road.
  for (std::size_t i = 0; i < net_.segment_count(); ++i) {
    const SegmentId in{i};
    if (net_.is_artery(in)) continue;
    const Segment& s = net_.segment(in);
    bool has_artery_exit = false;
    for (SegmentId out : net_.intersection(s.to).out) {
      if (out != s.reverse && net_.is_artery(out)) has_artery_exit = true;
    }
    if (!has_artery_exit) continue;
    int artery_exits = 0;
    for (int k = 0; k < 100; ++k) {
      if (net_.is_artery(policy.choose_exit(in, rng))) ++artery_exits;
    }
    EXPECT_GT(artery_exits, 95);
    return;
  }
  FAIL() << "no suitable approach found";
}

// --- mobility model ------------------------------------------------------------

class MobilityModelTest : public ::testing::Test {
 protected:
  MobilityModelTest() : net_(build_manhattan_map({})), sim_(1) {}
  RoadNetwork net_;
  Simulator sim_;
};

TEST_F(MobilityModelTest, StraightLineKinematics) {
  MobilityConfig cfg;
  cfg.lights.enabled = false;
  MobilityModel mob(sim_, net_, cfg);
  // 10 m/s along a fresh segment.
  const VehicleId v = mob.add_vehicle(SegmentId{std::size_t{0}}, 0.0, 10.0);
  mob.start();
  const Vec2 start = mob.position(v);
  sim_.run_until(SimTime::from_sec(10));
  // It may have passed intersections, but total path length is speed*time;
  // with lights off it never waits, so displacement along the graph is 100m.
  // Check it is exactly on the graph and moved.
  EXPECT_NE(mob.position(v), start);
}

TEST_F(MobilityModelTest, SpeedIsRespectedBetweenIntersections) {
  MobilityConfig cfg;
  cfg.lights.enabled = false;
  MobilityModel mob(sim_, net_, cfg);
  const VehicleId v = mob.add_vehicle(SegmentId{std::size_t{0}}, 0.0, 8.0);
  mob.start();
  sim_.run_until(SimTime::from_sec(5));
  const VehicleState& s = mob.state(v);
  // After 5 s at 8 m/s on a 250 m segment: offset 40 m, same segment.
  EXPECT_EQ(s.seg, SegmentId{std::size_t{0}});
  EXPECT_NEAR(s.offset, 40.0, 1e-6);
}

TEST_F(MobilityModelTest, WaitsAtRedLight) {
  MobilityConfig cfg;
  cfg.lights.red_sec = 50.0;
  MobilityModel mob(sim_, net_, cfg);
  // Fast vehicle close to the intersection: it must arrive and, if red,
  // wait with offset == segment length.
  const VehicleId v = mob.add_vehicle(SegmentId{std::size_t{0}}, 0.0, 15.0);
  mob.start();
  bool observed_wait = false;
  for (int tick = 0; tick < 400; ++tick) {
    sim_.run_until(SimTime::from_sec(0.5 * tick));
    const VehicleState& s = mob.state(v);
    if (s.waiting) {
      observed_wait = true;
      EXPECT_DOUBLE_EQ(s.offset, net_.segment(s.seg).length);
      break;
    }
  }
  EXPECT_TRUE(observed_wait);
}

class PassRecorder : public MovementListener {
 public:
  struct Pass {
    VehicleId v;
    IntersectionId node;
    SegmentId in;
    SegmentId out;
  };
  void on_intersection_pass(VehicleId v, IntersectionId node, SegmentId in,
                            SegmentId out) override {
    passes.push_back({v, node, in, out});
  }
  void on_moved(VehicleId v, Vec2 before, Vec2 after) override {
    moved.push_back(v);
    EXPECT_NE(before, after);
  }
  void on_tick() override { ++ticks; }
  std::vector<Pass> passes;
  std::vector<VehicleId> moved;
  int ticks = 0;
};

TEST_F(MobilityModelTest, ListenersSeeConsistentEvents) {
  MobilityConfig cfg;
  cfg.lights.enabled = false;
  MobilityModel mob(sim_, net_, cfg);
  PassRecorder rec;
  mob.add_listener(&rec);
  mob.add_vehicle(SegmentId{std::size_t{0}}, 200.0, 14.0);
  mob.start();
  sim_.run_until(SimTime::from_sec(60));
  ASSERT_FALSE(rec.passes.empty());
  for (const auto& p : rec.passes) {
    // The pass happens at the end of the in segment...
    EXPECT_EQ(net_.segment(p.in).to, p.node);
    // ...and the out segment leaves from that intersection.
    EXPECT_EQ(net_.segment(p.out).from, p.node);
    // No U-turn at a 4-way intersection.
    if (net_.intersection(p.node).out.size() > 1) {
      EXPECT_NE(p.out, net_.segment(p.in).reverse);
    }
  }
  EXPECT_GT(rec.ticks, 100);
  EXPECT_FALSE(rec.moved.empty());
}

TEST_F(MobilityModelTest, RandomPlacementRespectsCountAndBounds) {
  MobilityModel mob(sim_, net_, {});
  mob.place_random_vehicles(100);
  EXPECT_EQ(mob.vehicle_count(), 100u);
  const Aabb bounds = net_.bounds().inflated(1.0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(bounds.contains_closed(mob.position(VehicleId{i})));
  }
}

TEST_F(MobilityModelTest, PlacementFavorsArteries) {
  MobilityConfig cfg;
  cfg.artery_placement_weight = 10.0;
  MobilityModel mob(sim_, net_, cfg);
  mob.place_random_vehicles(1000);
  int on_artery = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (net_.is_artery(mob.state(VehicleId{i}).seg)) ++on_artery;
  }
  // Artery road-metres are ~56% of the map; weighted x10 -> ~93%.
  EXPECT_GT(on_artery, 850);
}

TEST_F(MobilityModelTest, StationaryArteryShareMatchesPaper) {
  // The paper measures ~90% of vehicles on arteries; the default turn policy
  // must keep the stationary share near that.
  MobilityModel mob(sim_, net_, {});
  mob.place_random_vehicles(500);
  mob.start();
  sim_.run_until(SimTime::from_sec(240));
  int on_artery = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    if (net_.is_artery(mob.state(VehicleId{i}).seg)) ++on_artery;
  }
  const double share = on_artery / 500.0;
  EXPECT_GT(share, 0.80);
  EXPECT_LT(share, 0.97);
}

TEST_F(MobilityModelTest, DeterministicAcrossRuns) {
  auto positions = [&](std::uint64_t seed) {
    Simulator sim(seed);
    MobilityModel mob(sim, net_, {});
    mob.place_random_vehicles(50);
    mob.start();
    sim.run_until(SimTime::from_sec(60));
    std::vector<Vec2> out;
    for (std::size_t i = 0; i < 50; ++i) out.push_back(mob.position(VehicleId{i}));
    return out;
  };
  EXPECT_EQ(positions(7), positions(7));
  EXPECT_NE(positions(7), positions(8));
}

TEST_F(MobilityModelTest, ParkedVehiclesNeverMove) {
  MobilityConfig cfg;
  cfg.parked_fraction = 1.0;
  MobilityModel mob(sim_, net_, cfg);
  mob.place_random_vehicles(20);
  mob.start();
  std::vector<Vec2> before;
  for (std::size_t i = 0; i < 20; ++i) before.push_back(mob.position(VehicleId{i}));
  sim_.run_until(SimTime::from_sec(120));
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(mob.position(VehicleId{i}), before[i]);
    EXPECT_DOUBLE_EQ(mob.state(VehicleId{i}).speed, 0.0);
  }
}

TEST_F(MobilityModelTest, ParkedFractionIsApproximatelyHonored) {
  MobilityConfig cfg;
  cfg.parked_fraction = 0.25;
  MobilityModel mob(sim_, net_, cfg);
  mob.place_random_vehicles(1000);
  int parked = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (mob.state(VehicleId{i}).speed == 0.0) ++parked;
  }
  EXPECT_NEAR(parked, 250, 60);
}

TEST_F(MobilityModelTest, ExplicitParkedVehicleAccepted) {
  MobilityModel mob(sim_, net_, {});
  const VehicleId v = mob.add_vehicle(SegmentId{std::size_t{0}}, 10.0, 0.0);
  mob.start();
  sim_.run_until(SimTime::from_sec(30));
  EXPECT_DOUBLE_EQ(mob.state(v).offset, 10.0);
}

// --- parking-churn lifecycle -------------------------------------------------

// Records the lifecycle events a protocol agent would see.
class ParkingListener : public MovementListener {
 public:
  void on_parked(VehicleId v) override { parked.push_back(v); }
  void on_departed(VehicleId v, bool abrupt) override {
    departed.emplace_back(v, abrupt);
  }
  std::vector<VehicleId> parked;
  std::vector<std::pair<VehicleId, bool>> departed;
};

MobilityConfig churny_config() {
  MobilityConfig cfg;
  cfg.parked_fraction = 0.3;
  cfg.churn.enabled = true;
  cfg.churn.park_rate_per_sec = 0.02;
  cfg.churn.dwell_mean_sec = 30.0;
  cfg.churn.min_dwell_sec = 10.0;
  return cfg;
}

TEST_F(MobilityModelTest, ChurnLifecycleFiresParkAndDepartEvents) {
  MobilityModel mob(sim_, net_, churny_config());
  ParkingListener listener;
  mob.add_listener(&listener);
  mob.place_random_vehicles(200);
  mob.start();
  sim_.run_until(SimTime::from_sec(300));
  EXPECT_GT(mob.park_events(), 0u);
  EXPECT_GT(mob.depart_events(), 0u);
  EXPECT_EQ(listener.parked.size(), mob.park_events());
  EXPECT_EQ(listener.departed.size(), mob.depart_events());
  // Dwell expiries are graceful departures, never abrupt.
  for (const auto& [v, abrupt] : listener.departed) EXPECT_FALSE(abrupt);
  // parked() reflects the lifecycle: a departed vehicle is moving again.
  for (const auto& [v, abrupt] : listener.departed) {
    if (mob.parked(v)) continue;  // may have re-parked later
    EXPECT_GT(mob.state(v).speed, 0.0);
  }
}

TEST_F(MobilityModelTest, ChurnDepartsRespectMinimumDwell) {
  MobilityConfig cfg = churny_config();
  cfg.parked_fraction = 0.0;  // only lifecycle parks, so park times are known
  MobilityModel mob(sim_, net_, cfg);
  struct Timed : MovementListener {
    explicit Timed(Simulator& s) : sim(&s) {}
    void on_parked(VehicleId v) override { at[v.index()] = sim->now(); }
    void on_departed(VehicleId v, bool abrupt) override {
      (void)abrupt;
      ASSERT_TRUE(at.count(v.index()) != 0u);
      dwells.push_back((sim->now() - at[v.index()]).sec());
      at.erase(v.index());
    }
    Simulator* sim;
    std::map<std::size_t, SimTime> at;
    std::vector<double> dwells;
  } listener{sim_};
  mob.add_listener(&listener);
  mob.place_random_vehicles(300);
  mob.start();
  sim_.run_until(SimTime::from_sec(400));
  ASSERT_GT(listener.dwells.size(), 10u);
  for (const double d : listener.dwells) {
    // One mobility tick of slack: departures fire on tick boundaries.
    EXPECT_GE(d, cfg.churn.min_dwell_sec - cfg.tick_sec);
  }
}

TEST_F(MobilityModelTest, ForceDepartIsAbruptAndOnlyActsOnParked) {
  MobilityModel mob(sim_, net_, churny_config());
  ParkingListener listener;
  mob.add_listener(&listener);
  mob.place_random_vehicles(50);
  mob.start();
  sim_.run_until(SimTime::from_sec(5));
  VehicleId parked_v, moving_v;
  for (std::size_t i = 0; i < 50; ++i) {
    (mob.parked(VehicleId{i}) ? parked_v : moving_v) = VehicleId{i};
  }
  ASSERT_TRUE(parked_v.valid());
  ASSERT_TRUE(moving_v.valid());
  EXPECT_FALSE(mob.force_depart(moving_v));
  listener.departed.clear();
  EXPECT_TRUE(mob.force_depart(parked_v));
  EXPECT_FALSE(mob.parked(parked_v));
  EXPECT_GT(mob.state(parked_v).speed, 0.0);
  ASSERT_EQ(listener.departed.size(), 1u);
  EXPECT_EQ(listener.departed[0].first, parked_v);
  EXPECT_TRUE(listener.departed[0].second);  // abrupt
}

TEST_F(MobilityModelTest, DisabledChurnDrawsNoExtraRandomness) {
  // Setting the churn knobs without enabling the lifecycle must leave every
  // trajectory untouched — disabled churn consumes zero RNG draws.
  auto positions = [&](const MobilityConfig& cfg) {
    Simulator sim(11);
    MobilityModel mob(sim, net_, cfg);
    mob.place_random_vehicles(80);
    mob.start();
    sim.run_until(SimTime::from_sec(90));
    std::vector<Vec2> out;
    out.reserve(80);
    for (std::size_t i = 0; i < 80; ++i) {
      out.push_back(mob.position(VehicleId{i}));
    }
    return out;
  };
  MobilityConfig plain;
  plain.parked_fraction = 0.2;
  MobilityConfig knobs = plain;
  knobs.churn.park_rate_per_sec = 0.5;  // ignored: enabled stays false
  knobs.churn.dwell_mean_sec = 1.0;
  knobs.churn.min_dwell_sec = 0.1;
  EXPECT_EQ(positions(plain), positions(knobs));
}

TEST_F(MobilityModelTest, ChurnLifecycleIsDeterministic) {
  auto counts = [&](std::uint64_t seed) {
    Simulator sim(seed);
    MobilityModel mob(sim, net_, churny_config());
    mob.place_random_vehicles(150);
    mob.start();
    sim.run_until(SimTime::from_sec(200));
    return std::make_pair(mob.park_events(), mob.depart_events());
  };
  EXPECT_EQ(counts(21), counts(21));
  EXPECT_NE(counts(21), counts(22));
}

// Parameterized: vehicles never leave the road graph across speeds.
class MobilitySpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(MobilitySpeedSweep, VehicleStaysOnGraph) {
  RoadNetwork net = build_manhattan_map({});
  Simulator sim(3);
  MobilityConfig cfg;
  cfg.min_speed_kmh = GetParam();
  cfg.max_speed_kmh = GetParam();
  MobilityModel mob(sim, net, cfg);
  mob.place_random_vehicles(20);
  mob.start();
  for (int t = 1; t <= 12; ++t) {
    sim.run_until(SimTime::from_sec(t * 10));
    for (std::size_t i = 0; i < 20; ++i) {
      const VehicleState& s = mob.state(VehicleId{i});
      EXPECT_GE(s.offset, 0.0);
      EXPECT_LE(s.offset, net.segment(s.seg).length + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, MobilitySpeedSweep,
                         ::testing::Values(5.0, 20.0, 40.0, 60.0, 90.0));

}  // namespace
}  // namespace hlsrg
