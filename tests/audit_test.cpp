// Audit subsystem tests: each auditor passes on a clean world and fires on a
// seeded corruption that only it can see; the determinism digest is stable
// across reruns and thread counts and catches injected seed reuse.
#include <gtest/gtest.h>

#include <utility>

#include "audit/audit_runner.h"
#include "audit/churn_audit.h"
#include "audit/conservation_audit.h"
#include "audit/grid_audit.h"
#include "audit/table_audit.h"
#include "core/churn_manager.h"
#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "mobility/mobility_model.h"
#include "grid/hierarchy.h"
#include "grid/partition.h"
#include "harness/digest.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "net/packet.h"
#include "roadnet/map_builder.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 42) {
  ScenarioConfig cfg = paper_scenario(120, seed);
  cfg.map.size_m = 1000.0;
  cfg.query_window = SimTime::from_sec(10.0);
  cfg.grace = SimTime::from_sec(20.0);
  return cfg;
}

// Runs a small HLSRG world past warmup so tables and counters are populated.
class AuditWorldTest : public ::testing::Test {
 protected:
  AuditWorldTest() : world_(small_scenario(), Protocol::kHlsrg) {
    world_.run_until(SimTime::from_sec(75.0));
  }

  HlsrgService& service() {
    return static_cast<HlsrgService&>(world_.service());
  }
  HlsrgRsuAgent& rsu_at_level(GridLevel level) {
    HlsrgService& svc = service();
    for (std::size_t i = 0; i < svc.rsu_agents().size(); ++i) {
      if (svc.rsu_agents()[i].level() == level) return svc.rsu_agent(RsuId{i});
    }
    ADD_FAILURE() << "no RSU at level " << static_cast<int>(level);
    return svc.rsu_agent(RsuId{std::size_t{0}});
  }
  // A vehicle id with no entry in the given RSU's summary tables.
  VehicleId absent_vehicle(const HlsrgRsuAgent& rsu) {
    for (std::size_t i = 0; i < world_.mobility().vehicle_count(); ++i) {
      const VehicleId v{i};
      if (rsu.l2_table().find(v) == nullptr &&
          rsu.l3_table().find(v) == nullptr) {
        return v;
      }
    }
    ADD_FAILURE() << "every vehicle is summarized";
    return VehicleId{};
  }
  // Violations from one specific auditor against the current world state.
  AuditReport run_auditor(const Auditor& auditor) {
    AuditReport report;
    auditor.check(world_.audit_scope(), &report);
    return report;
  }

  World world_;
};

// --- clean world -----------------------------------------------------------

TEST_F(AuditWorldTest, CleanWorldPassesAllAuditors) {
  const AuditReport report = world_.audit_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AuditWorldTest, RlsmpWorldAuditsCleanWithoutHlsrgState) {
  World rlsmp(small_scenario(), Protocol::kRlsmp);
  rlsmp.run_until(SimTime::from_sec(75.0));
  const AuditReport report = rlsmp.audit_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- grid auditor ----------------------------------------------------------

TEST(GridAuditTest, CleanHierarchyPasses) {
  MapConfig map;
  map.size_m = 1000.0;
  const RoadNetwork net = build_manhattan_map(map);
  const GridHierarchy hierarchy(net, build_partition(net));

  AuditScope scope;
  scope.net = &net;
  scope.hierarchy = &hierarchy;
  AuditReport report;
  GridAuditor{}.check(scope, &report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(GridAuditTest, DetectsUnorderedBoundaryLines) {
  MapConfig map;
  map.size_m = 1000.0;
  const RoadNetwork net = build_manhattan_map(map);
  Partition partition = build_partition(net);
  ASSERT_GE(partition.x_lines.size(), 3u);
  std::swap(partition.x_lines[0].coord, partition.x_lines[1].coord);
  const GridHierarchy hierarchy(net, partition);

  AuditScope scope;
  scope.net = &net;
  scope.hierarchy = &hierarchy;
  AuditReport report;
  GridAuditor{}.check(scope, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().auditor, "grid");
  EXPECT_NE(report.to_string().find("strictly increasing"), std::string::npos)
      << report.to_string();
}

TEST(GridAuditTest, DetectsCoverageGap) {
  MapConfig map;
  map.size_m = 1000.0;
  const RoadNetwork net = build_manhattan_map(map);
  Partition partition = build_partition(net);
  // Pull the east edge inward: cells no longer cover the map.
  partition.x_lines.back().coord -= 50.0;
  const GridHierarchy hierarchy(net, partition);

  AuditScope scope;
  scope.net = &net;
  scope.hierarchy = &hierarchy;
  AuditReport report;
  GridAuditor{}.check(scope, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("does not cover"), std::string::npos)
      << report.to_string();
}

// --- table auditor ---------------------------------------------------------

TEST_F(AuditWorldTest, DetectsFutureTimestamp) {
  HlsrgRsuAgent& rsu = rsu_at_level(GridLevel::kL2);
  rsu.mutable_l2_table().record(
      L2Summary{VehicleId{0u}, world_.sim().now() + SimTime::from_sec(100.0),
                GridCoord{0, 0}});

  const AuditReport report = run_auditor(TableAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().auditor, "table");
  EXPECT_NE(report.to_string().find("future"), std::string::npos)
      << report.to_string();
  // The corruption is invisible to the other auditors.
  EXPECT_TRUE(run_auditor(GridAuditor{}).ok());
  EXPECT_TRUE(run_auditor(ConservationAuditor{}).ok());
}

TEST_F(AuditWorldTest, DetectsOutOfRangeGridCoord) {
  HlsrgRsuAgent& rsu = rsu_at_level(GridLevel::kL2);
  rsu.mutable_l2_table().record(
      L2Summary{absent_vehicle(rsu), world_.sim().now(), GridCoord{1000, 1000}});

  const AuditReport report = run_auditor(TableAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("out-of-range"), std::string::npos)
      << report.to_string();
}

TEST_F(AuditWorldTest, DetectsNonexistentVehicleKey) {
  HlsrgRsuAgent& rsu = rsu_at_level(GridLevel::kL3);
  rsu.mutable_l3_table().record(
      L3Summary{VehicleId{999999u}, world_.sim().now(), GridCoord{0, 0},
                GridCoord{0, 0}});

  const AuditReport report = run_auditor(TableAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("does not exist"), std::string::npos)
      << report.to_string();
}

TEST_F(AuditWorldTest, DetectsOrphanFreshFullRecord) {
  HlsrgRsuAgent& rsu = rsu_at_level(GridLevel::kL2);
  const VehicleId v = absent_vehicle(rsu);
  L1Record rec;
  rec.vehicle = v;
  rec.pos = world_.mobility().position(v);
  rec.dir = Vec2{1.0, 0.0};
  rec.time = world_.sim().now();
  rec.l1 = world_.hierarchy().l1_at(rec.pos);
  rsu.mutable_full_table().record(rec);

  const AuditReport report = run_auditor(TableAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("no summary-table entry"),
            std::string::npos)
      << report.to_string();
}

TEST_F(AuditWorldTest, DetectsNegativeAndStaleTimestamp) {
  HlsrgRsuAgent& rsu = rsu_at_level(GridLevel::kL2);
  // A timestamp far in the past violates both the sign check and the bounded
  // staleness law (l2 bound: expiry + two push periods = 152 s; age here is
  // 75 s - (-100 s) = 175 s). The key must be absent: record() is
  // newest-wins and would silently drop an old entry for a live vehicle.
  rsu.mutable_l2_table().record(L2Summary{
      absent_vehicle(rsu), SimTime::from_sec(-100.0), GridCoord{0, 0}});

  const AuditReport report = run_auditor(TableAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("negative timestamp"), std::string::npos)
      << report.to_string();
  EXPECT_NE(report.to_string().find("is stale"), std::string::npos)
      << report.to_string();
}

TEST_F(AuditWorldTest, DetectsTableWithoutCenterDuty) {
  for (std::size_t i = 0; i < world_.mobility().vehicle_count(); ++i) {
    HlsrgVehicleAgent& agent = service().vehicle_agent(VehicleId{i});
    if (agent.in_center()) continue;
    L1Record rec;
    rec.vehicle = VehicleId{i};
    rec.pos = world_.mobility().position(VehicleId{i});
    rec.time = world_.sim().now();
    rec.l1 = world_.hierarchy().l1_at(rec.pos);
    agent.mutable_table().record(rec);

    const AuditReport report = run_auditor(TableAuditor{});
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("without center duty"),
              std::string::npos)
        << report.to_string();
    return;
  }
  FAIL() << "every vehicle is on center duty";
}

// --- conservation auditor --------------------------------------------------

TEST_F(AuditWorldTest, DetectsChannelLedgerCorruption) {
  // An offer that never settles — as if a delivery increment were dropped.
  world_.sim().metrics().channel.add_offered(
      static_cast<int>(PacketKind::kLocationUpdate));

  const AuditReport report = run_auditor(ConservationAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().auditor, "conservation");
  EXPECT_NE(report.to_string().find("ledger unbalanced"), std::string::npos)
      << report.to_string();
  EXPECT_TRUE(run_auditor(TableAuditor{}).ok());
}

TEST_F(AuditWorldTest, DetectsQueryAccountingCorruption) {
  world_.sim().metrics().queries_succeeded += 1;

  const AuditReport report = run_auditor(ConservationAuditor{});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("quer"), std::string::npos)
      << report.to_string();
}

TEST(ConservationAuditTest, EventQueueLawHoldsThroughCancel) {
  Simulator sim(7);
  const EventHandle a = sim.schedule_after(SimTime::from_sec(1.0), [] {});
  sim.schedule_after(SimTime::from_sec(2.0), [] {});
  sim.schedule_after(SimTime::from_sec(3.0), [] {});
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));  // double-cancel must not double-count
  sim.run_until(SimTime::from_sec(2.5));

  EXPECT_EQ(sim.queue().events_scheduled(), 3u);
  EXPECT_EQ(sim.queue().events_dispatched(), 1u);
  EXPECT_EQ(sim.queue().events_cancelled(), 1u);
  EXPECT_EQ(sim.queue().size(), 1u);

  AuditScope scope;
  scope.sim = &sim;
  AuditReport report;
  ConservationAuditor{}.check(scope, &report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- churn auditor ---------------------------------------------------------

ScenarioConfig churn_scenario(std::uint64_t seed = 47) {
  ScenarioConfig cfg = small_scenario(seed);
  cfg.vehicles = 200;
  cfg.map.size_m = 2000.0;
  cfg.mobility.parked_fraction = 0.35;
  cfg.mobility.churn.enabled = true;
  cfg.mobility.churn.park_rate_per_sec = 0.005;
  cfg.mobility.churn.dwell_mean_sec = 40.0;
  cfg.mobility.churn.min_dwell_sec = 10.0;
  cfg.hlsrg.parked_rsu_hosting = true;
  cfg.hlsrg.host_radius_m = 600.0;
  return cfg;
}

// Parked-RSU-hosting world: roles churn, handoffs fly, the ledger closes.
class ChurnAuditWorldTest : public ::testing::Test {
 protected:
  ChurnAuditWorldTest() : world_(churn_scenario(), Protocol::kHlsrg) {
    world_.run_until(SimTime::from_sec(75.0));
  }

  HlsrgService& service() {
    return static_cast<HlsrgService&>(world_.service());
  }
  AuditReport run_churn_auditor() {
    AuditReport report;
    ChurnAuditor{}.check(world_.audit_scope(), &report);
    return report;
  }

  World world_;
};

TEST_F(ChurnAuditWorldTest, CleanChurnWorldPasses) {
  ASSERT_NE(service().churn(), nullptr);
  const AuditReport report = world_.audit_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ChurnAuditWorldTest, DetectsRecordLeak) {
  // A handoff record that vanishes without being delivered, expired, or
  // left in flight — exactly the silent loss the ledger forbids.
  world_.sim().metrics().records_at_departure += 3;

  const AuditReport report = run_churn_auditor();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations().front().auditor, "churn");
  EXPECT_NE(report.to_string().find("leak"), std::string::npos)
      << report.to_string();
  // Invisible to the other auditors.
  EXPECT_TRUE(world_.audit_now().violations().size() ==
              report.violations().size());
}

TEST_F(ChurnAuditWorldTest, DetectsUnbalancedRoleAccounting) {
  world_.sim().metrics().role_elections += 1;

  const AuditReport report = run_churn_auditor();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("role accounting"), std::string::npos)
      << report.to_string();
}

TEST_F(ChurnAuditWorldTest, DetectsDoubleSettledHandoff) {
  world_.sim().metrics().handoffs_delivered += 1;
  world_.sim().metrics().handoff_records_delivered += 1;
  world_.sim().metrics().records_at_departure += 1;

  const AuditReport report = run_churn_auditor();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("settle twice"), std::string::npos)
      << report.to_string();
}

TEST_F(ChurnAuditWorldTest, DetectsVacantRoleWithLiveAgent) {
  ChurnManager& churn = *service().churn();
  RsuId staffed;
  for (std::size_t i = 0; i < churn.directory().role_count(); ++i) {
    if (churn.directory().staffed(RsuId{i}) &&
        service().rsu_agent(RsuId{i}).up()) {
      staffed = RsuId{i};
      break;
    }
  }
  ASSERT_TRUE(staffed.valid()) << "no staffed role to corrupt";
  // Drop the binding behind the agent's back: the role claims nobody hosts
  // it, yet the agent keeps serving.
  churn.mutable_directory().vacate(staffed);

  const AuditReport report = run_churn_auditor();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("live agent"), std::string::npos)
      << report.to_string();
}

TEST_F(ChurnAuditWorldTest, DetectsDrivingHost) {
  ChurnManager& churn = *service().churn();
  VehicleId driving;
  for (std::size_t i = 0; i < world_.mobility().vehicle_count(); ++i) {
    if (!world_.mobility().parked(VehicleId{i}) &&
        !churn.directory().role_of(VehicleId{i}).valid()) {
      driving = VehicleId{i};
      break;
    }
  }
  RsuId staffed;
  for (std::size_t i = 0; i < churn.directory().role_count(); ++i) {
    if (churn.directory().staffed(RsuId{i})) {
      staffed = RsuId{i};
      break;
    }
  }
  ASSERT_TRUE(driving.valid());
  ASSERT_TRUE(staffed.valid());
  churn.mutable_directory().bind_vehicle(staffed, driving);

  const AuditReport report = run_churn_auditor();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("driving, not parked"), std::string::npos)
      << report.to_string();
}

// --- determinism digests ---------------------------------------------------

TEST(DigestTest, SameSeedSameDigest) {
  World a(small_scenario(9), Protocol::kHlsrg);
  World b(small_scenario(9), Protocol::kHlsrg);
  a.run();
  b.run();
  EXPECT_EQ(state_digest(a), state_digest(b));
}

TEST(DigestTest, DifferentSeedDiffers) {
  World a(small_scenario(9), Protocol::kHlsrg);
  World b(small_scenario(10), Protocol::kHlsrg);
  a.run();
  b.run();
  EXPECT_NE(state_digest(a), state_digest(b));
}

TEST(DigestTest, ReplicaDigestsAreThreadCountInvariant) {
  const ScenarioConfig cfg = small_scenario(21);
  const ReplicaSet one = run_replicas(cfg, Protocol::kHlsrg, 3, 1);
  const ReplicaSet four = run_replicas(cfg, Protocol::kHlsrg, 3, 4);
  ASSERT_EQ(one.digests.size(), 3u);
  EXPECT_EQ(first_digest_mismatch(one.digests, four.digests),
            static_cast<std::size_t>(-1));
}

TEST(DigestTest, DetectsInjectedSeedReuse) {
  // A per-thread RNG reuse bug makes two replicas run the same seed; their
  // digests collide and diverge from the properly seeded baseline at the
  // first reused index.
  const ReplicaSet good =
      run_replicas(small_scenario(30), Protocol::kHlsrg, 2, 1);
  World reused(small_scenario(30), Protocol::kHlsrg);  // seed 30 again,
  reused.run();                                        // not 30 + 1
  const std::vector<std::uint64_t> buggy{good.digests[0],
                                         state_digest(reused)};
  EXPECT_EQ(buggy[0], buggy[1]);
  EXPECT_EQ(first_digest_mismatch(good.digests, buggy), 1u);
}

TEST(DigestTest, MismatchReportsLengthDifference) {
  const std::vector<std::uint64_t> a{1, 2, 3};
  const std::vector<std::uint64_t> b{1, 2};
  EXPECT_EQ(first_digest_mismatch(a, b), 2u);
  EXPECT_EQ(first_digest_mismatch(a, a), static_cast<std::size_t>(-1));
}

}  // namespace
}  // namespace hlsrg
