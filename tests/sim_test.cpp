// Tests for sim: time, event queue, RNG, metrics accumulators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace hlsrg {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(SimTime::from_sec(1.5).us(), 1'500'000);
  EXPECT_EQ(SimTime::from_ms(2.5).us(), 2'500);
  EXPECT_EQ(SimTime::from_min(1.0).us(), 60'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_us(250).ms(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime::from_us(1'000'000).sec(), 1.0);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::from_sec(1.0);
  const SimTime b = SimTime::from_sec(2.0);
  EXPECT_LT(a, b);
  EXPECT_EQ((a + b).sec(), 3.0);
  EXPECT_EQ((b - a).sec(), 1.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.sec(), 3.0);
}

// --- EventQueue -----------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(SimTime::from_sec(3), [&] { order.push_back(3); });
  q.schedule_at(SimTime::from_sec(1), [&] { order.push_back(1); });
  q.schedule_at(SimTime::from_sec(2), [&] { order.push_back(2); });
  q.run_until(SimTime::from_sec(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = SimTime::from_sec(1);
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  q.run_until(t);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue q;
  SimTime seen;
  q.schedule_at(SimTime::from_sec(5), [&] { seen = q.now(); });
  q.run_until(SimTime::from_sec(10));
  EXPECT_EQ(seen, SimTime::from_sec(5));
  EXPECT_EQ(q.now(), SimTime::from_sec(10));
}

TEST(EventQueueTest, RunUntilExcludesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(SimTime::from_sec(1), [&] { ++fired; });
  q.schedule_at(SimTime::from_sec(2), [&] { ++fired; });
  q.schedule_at(SimTime::from_sec(3), [&] { ++fired; });
  EXPECT_EQ(q.run_until(SimTime::from_sec(2)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.schedule_at(q.now() + SimTime::from_sec(1), chain);
    }
  };
  q.schedule_at(SimTime::from_sec(1), chain);
  q.run_until(SimTime::from_sec(100));
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule_at(SimTime::from_sec(1), [&] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // second cancel is a no-op
  q.run_until(SimTime::from_sec(2));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventHandle h = q.schedule_at(SimTime::from_sec(1), [] {});
  q.run_until(SimTime::from_sec(2));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, DefaultHandleIsInvalid) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
}

TEST(EventQueueTest, SizeAndEmptyTrackCancellations) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EventHandle h1 = q.schedule_at(SimTime::from_sec(1), [] {});
  q.schedule_at(SimTime::from_sec(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), SimTime::from_sec(2));
}

TEST(EventQueueTest, NextTimeOnEmptyIsMax) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.uniform_u64(10)]++;
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 10 * 0.15);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependentOfEachOther) {
  // Drawing from one split stream must not change another's sequence.
  Rng root1(5);
  Rng a1 = root1.split(1);
  Rng b1 = root1.split(2);
  const auto b1_first = b1.next();

  Rng root2(5);
  Rng a2 = root2.split(1);
  Rng b2 = root2.split(2);
  for (int i = 0; i < 50; ++i) a2.next();  // extra draws on a2 only
  EXPECT_EQ(b2.next(), b1_first);
  (void)a1;
}

TEST(RngTest, WorksWithStdDistributions) {
  Rng rng(9);
  std::uniform_int_distribution<int> dist(1, 6);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
  }
}

// --- LatencyStat / RunMetrics -----------------------------------------------

TEST(LatencyStatTest, TracksCountMeanMinMax) {
  LatencyStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 0.0);
  s.add(SimTime::from_ms(10));
  s.add(SimTime::from_ms(30));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 20.0);
  EXPECT_DOUBLE_EQ(s.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(s.max_ms(), 30.0);
}

TEST(LatencyStatTest, MergePoolsSamples) {
  LatencyStat a, b;
  a.add(SimTime::from_ms(10));
  b.add(SimTime::from_ms(50));
  b.add(SimTime::from_ms(30));
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 30.0);
  EXPECT_DOUBLE_EQ(a.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(a.max_ms(), 50.0);
}

TEST(LatencyStatTest, MergeIntoEmpty) {
  LatencyStat a, b;
  b.add(SimTime::from_ms(5));
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_ms(), 5.0);
}

TEST(LatencyStatTest, MergeIsAssociative) {
  // (a ∪ b) ∪ c must equal a ∪ (b ∪ c) in every statistic, including
  // percentiles over the pooled sample set.
  LatencyStat a, b, c;
  for (const int ms : {40, 10}) a.add(SimTime::from_ms(ms));
  for (const int ms : {90, 20, 70}) b.add(SimTime::from_ms(ms));
  c.add(SimTime::from_ms(60));

  LatencyStat left = a;   // (a+b)+c
  left.merge(b);
  left.merge(c);
  LatencyStat bc = b;     // a+(b+c)
  bc.merge(c);
  LatencyStat right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.mean_ms(), right.mean_ms());
  EXPECT_DOUBLE_EQ(left.min_ms(), right.min_ms());
  EXPECT_DOUBLE_EQ(left.max_ms(), right.max_ms());
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(left.percentile_ms(q), right.percentile_ms(q)) << q;
  }
}

TEST(LatencyStatTest, PercentileOfEmptyIsZero) {
  const LatencyStat s;
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(1.0), 0.0);
}

TEST(LatencyStatTest, PercentileSingleSample) {
  LatencyStat s;
  s.add(SimTime::from_ms(42));
  // With one sample, every quantile is that sample.
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.99), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(1.0), 42.0);
}

TEST(LatencyStatTest, PercentileEndpointsAreMinAndMax) {
  LatencyStat s;
  for (const int ms : {70, 10, 30, 50, 90}) s.add(SimTime::from_ms(ms));
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.0), s.min_ms());
  EXPECT_DOUBLE_EQ(s.percentile_ms(1.0), s.max_ms());
  // Nearest-rank median of {10,30,50,70,90}.
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.5), 50.0);
}

TEST(EngineStatsTest, MergeSumsCountsAndMaxesPeakDepth) {
  EngineStats a, b;
  a.events_processed = 100;
  a.events_scheduled = 120;
  a.peak_queue_depth = 40;
  a.sim_time_sec = 150.0;
  a.wall_clock_sec = 0.5;
  b.events_processed = 300;
  b.events_scheduled = 310;
  b.peak_queue_depth = 25;
  b.sim_time_sec = 150.0;
  b.wall_clock_sec = 1.5;
  a.merge(b);
  EXPECT_EQ(a.events_processed, 400u);
  EXPECT_EQ(a.events_scheduled, 430u);
  EXPECT_EQ(a.peak_queue_depth, 40u);  // max, not sum
  EXPECT_DOUBLE_EQ(a.sim_time_sec, 300.0);
  EXPECT_DOUBLE_EQ(a.wall_clock_sec, 2.0);
  EXPECT_DOUBLE_EQ(a.events_per_sec(), 200.0);
}

TEST(EngineStatsTest, EventsPerSecZeroWithoutWallClock) {
  EngineStats s;
  s.events_processed = 1000;
  EXPECT_DOUBLE_EQ(s.events_per_sec(), 0.0);
}

TEST(EventQueueTest, TracksDispatchAndPeakDepthCounters) {
  EventQueue q;
  q.schedule_at(SimTime::from_sec(1), [] {});
  q.schedule_at(SimTime::from_sec(2), [] {});
  q.schedule_at(SimTime::from_sec(3), [] {});
  EXPECT_EQ(q.events_scheduled(), 3u);
  EXPECT_EQ(q.peak_depth(), 3u);
  EXPECT_EQ(q.events_dispatched(), 0u);
  q.run_until(SimTime::from_sec(10));
  EXPECT_EQ(q.events_dispatched(), 3u);
  EXPECT_EQ(q.peak_depth(), 3u);  // high-water mark survives the drain
}

TEST(RunMetricsTest, MergeSumsCounters) {
  RunMetrics a, b;
  a.update_packets_originated = 10;
  a.queries_issued = 2;
  b.update_packets_originated = 5;
  b.queries_issued = 3;
  b.queries_succeeded = 1;
  a.merge(b);
  EXPECT_EQ(a.update_packets_originated, 15u);
  EXPECT_EQ(a.queries_issued, 5u);
  EXPECT_EQ(a.queries_succeeded, 1u);
}

TEST(RunMetricsTest, SuccessRate) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.success_rate(), 0.0);
  m.queries_issued = 4;
  m.queries_succeeded = 3;
  EXPECT_DOUBLE_EQ(m.success_rate(), 0.75);
}

TEST(RunMetricsTest, SummaryMentionsKeyCounters) {
  RunMetrics m;
  m.update_packets_originated = 12;
  m.queries_issued = 3;
  m.queries_succeeded = 2;
  const std::string s = m.summary();
  EXPECT_NE(s.find("updates=12"), std::string::npos);
  EXPECT_NE(s.find("queries=3"), std::string::npos);
  EXPECT_NE(s.find("ok=2"), std::string::npos);
}

TEST(EventQueueTest, RunOneOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
  q.schedule_at(SimTime::from_sec(1), [] {});
  EXPECT_TRUE(q.run_one());
  EXPECT_FALSE(q.run_one());
}

// Property: random interleavings of schedule/cancel keep the queue honest —
// every scheduled event either fires exactly once or was cancelled exactly
// once, never both.
class QueueCancelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueCancelProperty, FireXorCancel) {
  Rng rng(GetParam());
  EventQueue q;
  int fired = 0;
  int cancelled = 0;
  std::vector<EventHandle> handles;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    handles.push_back(q.schedule_at(
        SimTime::from_us(rng.uniform_int(1, 100000)), [&fired] { ++fired; }));
  }
  for (const EventHandle& h : handles) {
    if (rng.chance(0.4) && q.cancel(h)) ++cancelled;
  }
  q.run_until(SimTime::from_sec(10));
  EXPECT_EQ(fired + cancelled, n);
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueCancelProperty,
                         ::testing::Values(5u, 55u, 555u));

// --- Simulator -----------------------------------------------------------------

TEST(SimulatorTest, StreamsAreStablePerSeed) {
  Simulator a(99), b(99);
  EXPECT_EQ(a.mobility_rng().next(), b.mobility_rng().next());
  EXPECT_EQ(a.radio_rng().next(), b.radio_rng().next());
  EXPECT_EQ(a.protocol_rng().next(), b.protocol_rng().next());
  EXPECT_EQ(a.workload_rng().next(), b.workload_rng().next());
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim(1);
  SimTime fired;
  sim.schedule_after(SimTime::from_sec(2), [&] {
    sim.schedule_after(SimTime::from_sec(3), [&] { fired = sim.now(); });
  });
  sim.run_until(SimTime::from_sec(10));
  EXPECT_EQ(fired, SimTime::from_sec(5));
}

// Determinism property: identical seeds give identical event interleavings.
class QueueDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueDeterminism, RandomWorkloadsReplayExactly) {
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<std::uint64_t> trace;
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(q.now().us() ^ static_cast<std::uint64_t>(depth));
      if (depth >= 6) return;
      const int children = static_cast<int>(rng.uniform_int(0, 2));
      for (int c = 0; c < children; ++c) {
        q.schedule_at(q.now() + SimTime::from_us(rng.uniform_int(1, 1000)),
                      [&spawn, depth] { spawn(depth + 1); });
      }
    };
    q.schedule_at(SimTime::from_us(1), [&] { spawn(0); });
    q.run_until(SimTime::from_sec(10));
    return trace;
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueDeterminism,
                         ::testing::Values(1u, 17u, 123u, 9999u));

}  // namespace
}  // namespace hlsrg
