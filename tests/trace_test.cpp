// Tests for the event trace: recording, filtering, CSV export, and the
// protocol hooks that feed it.
#include <gtest/gtest.h>

#include "harness/world.h"
#include "trace/trace.h"

namespace hlsrg {
namespace {

TraceEvent make_event(TraceEventKind kind, std::uint32_t subject,
                      std::uint32_t query = 0) {
  TraceEvent e;
  e.time = SimTime::from_sec(1);
  e.kind = kind;
  e.subject = VehicleId{subject};
  e.query_id = query;
  return e;
}

TEST(TraceLogTest, RecordAndCount) {
  TraceLog log;
  log.record(make_event(TraceEventKind::kUpdateSent, 1));
  log.record(make_event(TraceEventKind::kUpdateSent, 2));
  log.record(make_event(TraceEventKind::kQueryIssued, 1, 7));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(TraceEventKind::kUpdateSent), 2u);
  EXPECT_EQ(log.count(TraceEventKind::kQueryIssued), 1u);
  EXPECT_EQ(log.count(TraceEventKind::kAckSent), 0u);
}

TEST(TraceLogTest, FilterByVehicle) {
  TraceLog log;
  log.record(make_event(TraceEventKind::kUpdateSent, 1));
  TraceEvent e = make_event(TraceEventKind::kQueryIssued, 2, 3);
  e.other = VehicleId{1u};
  log.record(e);
  log.record(make_event(TraceEventKind::kUpdateSent, 5));
  EXPECT_EQ(log.for_vehicle(VehicleId{1u}).size(), 2u);  // subject + other
  EXPECT_EQ(log.for_vehicle(VehicleId{5u}).size(), 1u);
  EXPECT_TRUE(log.for_vehicle(VehicleId{99u}).empty());
}

TEST(TraceLogTest, FilterByQueryIgnoresNonQueryKinds) {
  TraceLog log;
  log.record(make_event(TraceEventKind::kUpdateSent, 1, 0));
  log.record(make_event(TraceEventKind::kQueryIssued, 1, 0));
  log.record(make_event(TraceEventKind::kQuerySucceeded, 1, 0));
  log.record(make_event(TraceEventKind::kQueryIssued, 2, 1));
  EXPECT_EQ(log.for_query(0).size(), 2u);
  EXPECT_EQ(log.for_query(1).size(), 1u);
}

TEST(TraceLogTest, CsvHasHeaderAndRows) {
  TraceLog log;
  log.record(make_event(TraceEventKind::kAckSent, 4, 9));
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("time_s,kind,subject"), std::string::npos);
  EXPECT_NE(csv.find("ack_sent"), std::string::npos);
  EXPECT_NE(csv.find(",9"), std::string::npos);
}

TEST(TraceEventNameTest, AllKindsNamed) {
  for (auto kind : {TraceEventKind::kUpdateSent, TraceEventKind::kQueryIssued,
                    TraceEventKind::kQuerySucceeded,
                    TraceEventKind::kQueryFailed, TraceEventKind::kNotification,
                    TraceEventKind::kAckSent, TraceEventKind::kTableHandoff,
                    TraceEventKind::kTablePush}) {
    EXPECT_STRNE(trace_event_name(kind), "unknown");
  }
}

// --- protocol integration ---------------------------------------------------

TEST(TraceIntegrationTest, HlsrgRunEmitsCoherentTrace) {
  ScenarioConfig cfg = paper_scenario(300, 61);
  World world(cfg, Protocol::kHlsrg);
  TraceLog trace;
  world.attach_trace(&trace);
  world.run();

  const RunMetrics& m = world.metrics();
  EXPECT_EQ(trace.count(TraceEventKind::kQueryIssued), m.queries_issued);
  EXPECT_EQ(trace.count(TraceEventKind::kQuerySucceeded),
            m.queries_succeeded);
  EXPECT_EQ(trace.count(TraceEventKind::kQueryFailed), m.queries_failed);
  EXPECT_EQ(trace.count(TraceEventKind::kUpdateSent),
            m.update_packets_originated);
  EXPECT_EQ(trace.count(TraceEventKind::kNotification), m.notifications_sent);
  EXPECT_EQ(trace.count(TraceEventKind::kAckSent), m.acks_sent);

  // Events are in nondecreasing time order (single-threaded DES).
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_GE(trace.events()[i].time, trace.events()[i - 1].time);
  }

  // Every successful query's trace reads issue -> ... -> success.
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEventKind::kQuerySucceeded) continue;
    const auto story = trace.for_query(e.query_id);
    ASSERT_GE(story.size(), 2u);
    EXPECT_EQ(story.front().kind, TraceEventKind::kQueryIssued);
    EXPECT_EQ(story.back().kind, TraceEventKind::kQuerySucceeded);
  }
}

TEST(TraceIntegrationTest, DetachedTraceCostsNothing) {
  ScenarioConfig cfg = paper_scenario(200, 62);
  World with(cfg, Protocol::kHlsrg);
  TraceLog trace;
  with.attach_trace(&trace);
  World without(cfg, Protocol::kHlsrg);
  with.run();
  without.run();
  // Tracing must not perturb the simulation.
  EXPECT_EQ(with.metrics().radio_broadcasts,
            without.metrics().radio_broadcasts);
  EXPECT_EQ(with.metrics().queries_succeeded,
            without.metrics().queries_succeeded);
  EXPECT_GT(trace.size(), 0u);
}

TEST(TraceIntegrationTest, RlsmpAndFloodAlsoTrace) {
  for (Protocol protocol : {Protocol::kRlsmp, Protocol::kFlood}) {
    ScenarioConfig cfg = paper_scenario(150, 63);
    World world(cfg, protocol);
    TraceLog trace;
    world.attach_trace(&trace);
    world.run();
    EXPECT_GT(trace.count(TraceEventKind::kUpdateSent), 0u)
        << protocol_name(protocol);
    EXPECT_EQ(trace.count(TraceEventKind::kQueryIssued),
              world.metrics().queries_issued);
  }
}

}  // namespace
}  // namespace hlsrg
