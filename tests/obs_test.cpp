// Tests for the region observatory (src/obs): the position→region mapper
// against the grid hierarchy, the conservation laws tying per-region
// counters to the global ledger, traffic-matrix consistency, the phase
// profiler's tree/merge/export semantics, and — the load-bearing guarantee —
// that enabling the profiler cannot move a determinism digest.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "grid/hierarchy.h"
#include "harness/digest.h"
#include "harness/runner.h"
#include "harness/world.h"
#include "obs/profiler.h"
#include "obs/region_telemetry.h"
#include "report/json.h"

namespace hlsrg {
namespace {

// Short horizon, small map: enough traffic for every counter family to fire
// without bench-scale run times.
ScenarioConfig obs_scenario(int vehicles, std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(vehicles, seed);
  cfg.warmup = SimTime::from_sec(20.0);
  cfg.query_window = SimTime::from_sec(15.0);
  cfg.grace = SimTime::from_sec(25.0);
  return cfg;
}

// 4 km map => 4 L3 regions (paper map is 2 km = a single region), so the
// cross-region matrix and the region mapper have real work to do.
ScenarioConfig multi_region_scenario(int vehicles, std::uint64_t seed) {
  ScenarioConfig cfg = obs_scenario(vehicles, seed);
  cfg.map.size_m = 4000.0;
  return cfg;
}

struct RegionSums {
  std::uint64_t radio_broadcasts = 0;
  std::uint64_t radio_unicasts = 0;
  std::uint64_t radio_delivered = 0;
  std::uint64_t radio_dropped = 0;
  std::uint64_t wired_out = 0;
  std::uint64_t wired_in = 0;
  std::uint64_t wired_dropped = 0;
  std::uint64_t updates = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t queries_shed = 0;
};

RegionSums sum_regions(const RegionTelemetry& r) {
  RegionSums s;
  for (int i = 0; i < r.region_count(); ++i) {
    const RegionCounters& c = r.at(i);
    s.radio_broadcasts += c.radio_broadcasts;
    s.radio_unicasts += c.radio_unicasts;
    s.radio_delivered += c.radio_delivered;
    s.radio_dropped += c.radio_dropped;
    s.wired_out += c.wired_out;
    s.wired_in += c.wired_in;
    s.wired_dropped += c.wired_dropped;
    s.updates += c.updates;
    s.queries_served += c.queries_served;
    s.cache_hits += c.cache_hits;
    s.queries_shed += c.queries_shed;
  }
  return s;
}

// The laws from the region_telemetry.h header comment, applied to one run.
void expect_conservation(const World& world) {
  const RegionTelemetry& r = world.regions();
  const RunMetrics& m = world.metrics();
  const RegionSums s = sum_regions(r);
  EXPECT_EQ(s.radio_broadcasts, m.radio_broadcasts);
  EXPECT_EQ(s.radio_unicasts, m.radio_unicasts);
  EXPECT_EQ(s.radio_dropped, m.radio_drops);
  EXPECT_EQ(s.updates, m.update_packets_originated);
  EXPECT_EQ(s.queries_served, m.server_lookup_hits + m.rsu_lookup_hits);
  EXPECT_EQ(s.cache_hits, m.cache_hits);
  EXPECT_EQ(s.queries_shed, m.queries_shed + m.retries_shed);
  EXPECT_EQ(s.radio_delivered + s.wired_in, m.channel.total_delivered());
  EXPECT_EQ(s.radio_dropped + s.wired_dropped, m.channel.total_dropped());

  // Matrix consistency: row sums are the source region's wired_out, column
  // sums the destination's wired_in, and the hop total is the global
  // per-hop wired message count.
  const int n = r.region_count();
  std::uint64_t hop_total = 0;
  for (int from = 0; from < n; ++from) {
    std::uint64_t row = 0;
    for (int to = 0; to < n; ++to) {
      row += r.matrix_packets(from, to);
      hop_total += r.matrix_hops(from, to);
      if (r.matrix_packets(from, to) > 0) {
        EXPECT_GT(r.matrix_bytes(from, to), 0u) << from << "->" << to;
      }
    }
    EXPECT_EQ(row, r.at(from).wired_out) << "row " << from;
  }
  for (int to = 0; to < n; ++to) {
    std::uint64_t col = 0;
    for (int from = 0; from < n; ++from) col += r.matrix_packets(from, to);
    EXPECT_EQ(col, r.at(to).wired_in) << "col " << to;
  }
  EXPECT_EQ(hop_total, m.wired_messages);
}

// ---------------------------------------------------------------------------
// Region mapper
// ---------------------------------------------------------------------------

TEST(RegionTelemetryTest, RegionOfMatchesHierarchyCoordAt) {
  const ScenarioConfig cfg = multi_region_scenario(10, 11);
  World world(cfg, Protocol::kHlsrg);
  const GridHierarchy& h = world.hierarchy();
  const RegionTelemetry& r = world.regions();
  ASSERT_TRUE(r.configured());
  EXPECT_EQ(r.cols(), h.cols(GridLevel::kL3));
  EXPECT_EQ(r.rows(), h.rows(GridLevel::kL3));
  EXPECT_GE(r.region_count(), 4);

  // Dense probe grid, including positions outside the map (clamped) and on
  // cell edges (half-open) — the mapper must agree with coord_at everywhere.
  const double size = cfg.map.size_m;
  for (double y = -100.0; y <= size + 100.0; y += size / 37.0) {
    for (double x = -100.0; x <= size + 100.0; x += size / 37.0) {
      const Vec2 p{x, y};
      const GridCoord c = h.coord_at(p, GridLevel::kL3);
      EXPECT_EQ(r.region_of(p), c.row * r.cols() + c.col)
          << "at (" << x << ", " << y << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Counter conservation per protocol
// ---------------------------------------------------------------------------

TEST(RegionConservationTest, HlsrgSingleRegion) {
  World world(obs_scenario(100, 21), Protocol::kHlsrg);
  world.run();
  EXPECT_GT(world.metrics().radio_broadcasts, 0u);
  EXPECT_GT(world.metrics().update_packets_originated, 0u);
  expect_conservation(world);
}

TEST(RegionConservationTest, HlsrgMultiRegionWithWiredMatrix) {
  World world(multi_region_scenario(220, 22), Protocol::kHlsrg);
  world.run();
  EXPECT_GT(world.metrics().wired_messages, 0u);
  expect_conservation(world);
  // Cross-region forwarding must put traffic off the matrix diagonal.
  const RegionTelemetry& r = world.regions();
  std::uint64_t off_diagonal = 0;
  for (int from = 0; from < r.region_count(); ++from) {
    for (int to = 0; to < r.region_count(); ++to) {
      if (from != to) off_diagonal += r.matrix_packets(from, to);
    }
  }
  EXPECT_GT(off_diagonal, 0u);
}

TEST(RegionConservationTest, Rlsmp) {
  World world(obs_scenario(100, 23), Protocol::kRlsmp);
  world.run();
  EXPECT_GT(world.metrics().update_packets_originated, 0u);
  expect_conservation(world);
}

TEST(RegionConservationTest, Flood) {
  World world(obs_scenario(80, 24), Protocol::kFlood);
  world.run();
  EXPECT_GT(world.metrics().update_packets_originated, 0u);
  expect_conservation(world);
}

TEST(RegionConservationTest, ServiceTierShedsAttributed) {
  ScenarioConfig cfg = obs_scenario(120, 25);
  cfg.map.size_m = 1000.0;
  cfg.source_fraction = 0.0;
  cfg.service.enabled = true;
  cfg.service.open_loop_rate_per_sec = 40.0;
  cfg.service.max_outstanding = 4;  // absurdly tight: shedding must fire
  World world(cfg, Protocol::kHlsrg);
  world.run();
  EXPECT_GT(world.metrics().queries_shed, 0u);
  expect_conservation(world);
}

// ---------------------------------------------------------------------------
// RegionTelemetry unit behavior
// ---------------------------------------------------------------------------

RegionTelemetry two_by_two() {
  // Two L1 rows/cols of 4 => 8 edges per axis would be the real shape; for
  // unit purposes 8 L1 intervals per axis gives exactly 2 L3 cells per axis.
  std::vector<double> edges;
  for (int i = 0; i <= 8; ++i) edges.push_back(i * 100.0);
  return RegionTelemetry(edges, edges);
}

TEST(RegionTelemetryTest, WiredMatrixUpdatesEndpointCounters) {
  RegionTelemetry r = two_by_two();
  ASSERT_EQ(r.region_count(), 4);
  r.add_wired_delivered(0, 3, 2, 128);
  r.add_wired_delivered(0, 3, 3, 64);
  r.add_wired_delivered(3, 0, 1, 32);
  r.add_wired_dropped(1);
  EXPECT_EQ(r.matrix_packets(0, 3), 2u);
  EXPECT_EQ(r.matrix_hops(0, 3), 5u);
  EXPECT_EQ(r.matrix_bytes(0, 3), 192u);
  EXPECT_EQ(r.matrix_packets(3, 0), 1u);
  EXPECT_EQ(r.at(0).wired_out, 2u);
  EXPECT_EQ(r.at(3).wired_in, 2u);
  EXPECT_EQ(r.at(3).wired_out, 1u);
  EXPECT_EQ(r.at(0).wired_in, 1u);
  EXPECT_EQ(r.at(1).wired_dropped, 1u);
}

TEST(RegionTelemetryTest, LoadImbalanceSummary) {
  RegionTelemetry r = two_by_two();
  // Loads {4, 0, 0, 0}: mean 1, max/mean 4, variance 3 => cv = sqrt(3).
  r.at(0).radio_delivered = 3;
  r.at(0).wired_in = 1;
  const RegionTelemetry::Imbalance imb = r.load_imbalance();
  EXPECT_EQ(imb.total_load, 4u);
  EXPECT_DOUBLE_EQ(imb.max_over_mean, 4.0);
  EXPECT_DOUBLE_EQ(imb.cv, std::sqrt(3.0));

  // Uniform load => both measures collapse to their floor.
  RegionTelemetry uniform = two_by_two();
  for (int i = 0; i < 4; ++i) uniform.at(i).radio_delivered = 7;
  const RegionTelemetry::Imbalance u = uniform.load_imbalance();
  EXPECT_DOUBLE_EQ(u.max_over_mean, 1.0);
  EXPECT_DOUBLE_EQ(u.cv, 0.0);
}

TEST(RegionTelemetryTest, MergeAddsCountersAndAdoptsGeometry) {
  RegionTelemetry a = two_by_two();
  RegionTelemetry b = two_by_two();
  a.at(2).radio_broadcasts = 5;
  b.at(2).radio_broadcasts = 7;
  a.add_wired_delivered(1, 2, 4, 100);
  b.add_wired_delivered(1, 2, 6, 50);
  a.push_sample(5.0, {1, 2, 3, 4}, {0, 0, 0, 0}, {0, 0, 0, 0});
  b.push_sample(5.0, {9, 9, 9, 9}, {0, 0, 0, 0}, {0, 0, 0, 0});

  // An unconfigured shell adopts the first source wholesale (the harness
  // aggregate starts like this), then further merges add element-wise with
  // series keeping the first replica.
  RegionTelemetry merged;
  EXPECT_FALSE(merged.configured());
  merged.merge(a);
  merged.merge(b);
  ASSERT_TRUE(merged.configured());
  EXPECT_EQ(merged.region_count(), 4);
  EXPECT_EQ(merged.replicas(), 2);
  EXPECT_EQ(merged.at(2).radio_broadcasts, 12u);
  EXPECT_EQ(merged.matrix_packets(1, 2), 2u);
  EXPECT_EQ(merged.matrix_hops(1, 2), 10u);
  EXPECT_EQ(merged.matrix_bytes(1, 2), 150u);
  EXPECT_EQ(merged.sample_count(), 1u);
}

TEST(RegionTelemetryTest, ObsDocumentSchemaAndNullProfile) {
  RegionTelemetry r = two_by_two();
  const JsonValue doc = obs_document(r, nullptr);
  EXPECT_EQ(doc.at("schema").as_string(), "hlsrg-obs/v1");
  EXPECT_TRUE(doc.at("telemetry").is_object());
  EXPECT_TRUE(doc.at("profile").is_null());

  PhaseProfiler prof;
  {
    ProfileScope s(&prof, "phase");
  }
  const JsonValue with = obs_document(r, &prof);
  EXPECT_TRUE(with.at("profile").is_object());
}

// ---------------------------------------------------------------------------
// Phase profiler
// ---------------------------------------------------------------------------

TEST(PhaseProfilerTest, TreeShapeAndTimes) {
  PhaseProfiler p;
  EXPECT_TRUE(p.empty());
  p.begin("outer");
  p.begin("inner");
  p.end(30);
  p.begin("inner");
  p.end(50);
  p.end(100);
  EXPECT_FALSE(p.empty());

  const int outer = p.find("outer");
  ASSERT_GE(outer, 0);
  const int inner = p.find("inner", outer);
  ASSERT_GE(inner, 0);
  EXPECT_EQ(p.find("inner"), -1);  // not a child of root
  const PhaseProfiler::Node& o = p.nodes()[static_cast<std::size_t>(outer)];
  const PhaseProfiler::Node& i = p.nodes()[static_cast<std::size_t>(inner)];
  EXPECT_EQ(o.calls, 1u);
  EXPECT_EQ(i.calls, 2u);
  EXPECT_EQ(o.inclusive_ns, 100u);
  EXPECT_EQ(i.inclusive_ns, 80u);
  EXPECT_EQ(o.exclusive_ns(), 20u);
  EXPECT_EQ(i.exclusive_ns(), 80u);
}

TEST(PhaseProfilerTest, ExclusiveClampsWhenChildrenOverrun) {
  // Independent clock truncation can make child sums exceed the parent by a
  // few ns; self time clamps at zero instead of wrapping.
  PhaseProfiler p;
  p.begin("outer");
  p.begin("inner");
  p.end(110);
  p.end(100);
  const int outer = p.find("outer");
  EXPECT_EQ(p.nodes()[static_cast<std::size_t>(outer)].exclusive_ns(), 0u);
}

TEST(PhaseProfilerTest, MergeMatchesByNamePath) {
  PhaseProfiler a;
  a.begin("run");
  a.begin("dispatch");
  a.end(10);
  a.end(25);

  PhaseProfiler b;
  b.begin("run");
  b.begin("dispatch");
  b.end(40);
  b.begin("audit");  // only in b: structure is the union
  b.end(5);
  b.end(60);

  a.merge(b);
  const int run = a.find("run");
  ASSERT_GE(run, 0);
  const int dispatch = a.find("dispatch", run);
  const int audit = a.find("audit", run);
  ASSERT_GE(dispatch, 0);
  ASSERT_GE(audit, 0);
  EXPECT_EQ(a.nodes()[static_cast<std::size_t>(run)].calls, 2u);
  EXPECT_EQ(a.nodes()[static_cast<std::size_t>(run)].inclusive_ns, 85u);
  EXPECT_EQ(a.nodes()[static_cast<std::size_t>(dispatch)].inclusive_ns, 50u);
  EXPECT_EQ(a.nodes()[static_cast<std::size_t>(audit)].inclusive_ns, 5u);
}

TEST(PhaseProfilerTest, ToJsonSortsChildrenByName) {
  PhaseProfiler p;
  p.begin("zebra");
  p.end(1);
  p.begin("alpha");
  p.end(2);
  const JsonValue doc = p.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), "hlsrg-profile/v1");
  const JsonValue& children = doc.at("root").at("children");
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children.items()[0].at("name").as_string(), "alpha");
  EXPECT_EQ(children.items()[1].at("name").as_string(), "zebra");
}

TEST(PhaseProfilerTest, NullProfilerScopeIsNoOp) {
  // Must compile to two pointer checks and touch nothing.
  ProfileScope scope(nullptr, "anything");
}

TEST(PhaseProfilerTest, RealClockScopesAccumulate) {
  PhaseProfiler p;
  {
    ProfileScope outer(&p, "outer");
    ProfileScope inner(&p, "inner");
  }
  const int outer = p.find("outer");
  ASSERT_GE(outer, 0);
  ASSERT_GE(p.find("inner", outer), 0);
  // Monotonic clock: parent includes the child.
  const PhaseProfiler::Node& o = p.nodes()[static_cast<std::size_t>(outer)];
  EXPECT_GE(o.inclusive_ns, o.child_ns);
}

// ---------------------------------------------------------------------------
// Digest neutrality: profiling on/off must not move the determinism digest
// ---------------------------------------------------------------------------

void expect_profile_digest_neutral(Protocol protocol, std::uint64_t seed) {
  ScenarioConfig off = obs_scenario(60, seed);
  ScenarioConfig on = off;
  on.profile = true;

  World a(off, protocol);
  World b(on, protocol);
  a.run();
  b.run();
  EXPECT_EQ(a.profiler(), nullptr);
  ASSERT_NE(b.profiler(), nullptr);
  EXPECT_FALSE(b.profiler()->empty());
  EXPECT_EQ(state_digest(a), state_digest(b));
}

TEST(ProfilerDigestTest, HlsrgNeutral) {
  expect_profile_digest_neutral(Protocol::kHlsrg, 31);
}

TEST(ProfilerDigestTest, RlsmpNeutral) {
  expect_profile_digest_neutral(Protocol::kRlsmp, 32);
}

TEST(ProfilerDigestTest, FloodNeutral) {
  expect_profile_digest_neutral(Protocol::kFlood, 33);
}

// Replica aggregation: the runner merges telemetry and profiles in replica
// order, so counters scale with the replica count and the profile tree is
// the union of the per-replica trees.
TEST(RunnerObsTest, ReplicaMergeSumsTelemetry) {
  ScenarioConfig cfg = obs_scenario(60, 34);
  cfg.profile = true;
  const ReplicaSet one = run_replicas(cfg, Protocol::kHlsrg, 1);
  const ReplicaSet two = run_replicas(cfg, Protocol::kHlsrg, 2);
  ASSERT_TRUE(one.regions.configured());
  ASSERT_TRUE(two.regions.configured());
  EXPECT_EQ(one.regions.replicas(), 1);
  EXPECT_EQ(two.regions.replicas(), 2);
  // Replica 0 is deterministic, so the 2-replica aggregate strictly
  // contains the 1-replica counters.
  const RegionSums s1 = sum_regions(one.regions);
  const RegionSums s2 = sum_regions(two.regions);
  EXPECT_GE(s2.radio_broadcasts, s1.radio_broadcasts);
  EXPECT_GT(s1.radio_broadcasts, 0u);
  EXPECT_FALSE(two.profile.empty());
}

}  // namespace
}  // namespace hlsrg
