// Service-tier tests: open-loop generator determinism and stream isolation,
// hot-destination cache semantics (TTL, invalidation-on-update, eviction),
// batching-window crash conservation, and admission-control shed accounting
// closing through the ConservationAuditor.
#include <gtest/gtest.h>

#include <cstddef>

#include "audit/conservation_audit.h"
#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "harness/digest.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "service/batcher.h"
#include "service/hot_cache.h"
#include "service/knee.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

// Small map, short horizon: enough traffic for the tier paths to fire
// without bench-scale run times.
ScenarioConfig tier_scenario(std::uint64_t seed = 41) {
  ScenarioConfig cfg = paper_scenario(120, seed);
  cfg.map.size_m = 1000.0;
  cfg.warmup = SimTime::from_sec(30.0);
  cfg.query_window = SimTime::from_sec(15.0);
  cfg.grace = SimTime::from_sec(20.0);
  // Open-loop arrivals are the only load: the sweep-style assertions below
  // reason about offered counts, and closed-loop sources would blur them.
  cfg.workload = ScenarioConfig::WorkloadKind::kOneShot;
  cfg.source_fraction = 0.0;
  cfg.hotspot_targets = 3;
  cfg.service.enabled = true;
  cfg.service.open_loop_rate_per_sec = 12.0;
  cfg.service.hotspot_fraction = 0.9;
  return cfg;
}

AuditReport conservation_report(World& world) {
  AuditReport report;
  ConservationAuditor{}.check(world.audit_scope(), &report);
  return report;
}

// --- hot-destination cache (unit) ------------------------------------------

L1Record record_for(VehicleId v, SimTime t) {
  L1Record r;
  r.vehicle = v;
  r.time = t;
  return r;
}

TEST(HotCacheTest, ProbeHitsInsideTtlAndExpiresAfter) {
  HotDestinationCache cache;
  cache.configure(SimTime::from_sec(5.0), 8);
  cache.fill(record_for(VehicleId{1u}, SimTime::from_sec(10.0)),
             SimTime::from_sec(10.0));
  EXPECT_NE(cache.probe(VehicleId{1u}, SimTime::from_sec(14.0)), nullptr);
  // Past the TTL the entry is dropped on probe, not just masked.
  EXPECT_EQ(cache.probe(VehicleId{1u}, SimTime::from_sec(15.5)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HotCacheTest, InvalidateDropsOnlyStaleEntries) {
  HotDestinationCache cache;
  cache.configure(SimTime::from_sec(60.0), 8);
  cache.fill(record_for(VehicleId{1u}, SimTime::from_sec(10.0)),
             SimTime::from_sec(10.0));
  // An older update must not evict the newer cached record.
  EXPECT_FALSE(cache.invalidate_if_stale(VehicleId{1u}, SimTime::from_sec(9.0)));
  EXPECT_NE(cache.probe(VehicleId{1u}, SimTime::from_sec(11.0)), nullptr);
  // A fresher update must.
  EXPECT_TRUE(cache.invalidate_if_stale(VehicleId{1u}, SimTime::from_sec(12.0)));
  EXPECT_EQ(cache.probe(VehicleId{1u}, SimTime::from_sec(12.0)), nullptr);
  // Invalidating an absent vehicle is a no-op.
  EXPECT_FALSE(cache.invalidate_if_stale(VehicleId{7u}, SimTime::from_sec(12.0)));
}

TEST(HotCacheTest, CapacityEvictsOldestFirst) {
  HotDestinationCache cache;
  cache.configure(SimTime::from_sec(60.0), 2);
  cache.fill(record_for(VehicleId{1u}, SimTime::from_sec(1.0)),
             SimTime::from_sec(1.0));
  cache.fill(record_for(VehicleId{2u}, SimTime::from_sec(2.0)),
             SimTime::from_sec(2.0));
  cache.fill(record_for(VehicleId{3u}, SimTime::from_sec(3.0)),
             SimTime::from_sec(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.probe(VehicleId{1u}, SimTime::from_sec(3.0)), nullptr);
  EXPECT_NE(cache.probe(VehicleId{2u}, SimTime::from_sec(3.0)), nullptr);
  EXPECT_NE(cache.probe(VehicleId{3u}, SimTime::from_sec(3.0)), nullptr);
}

TEST(HotCacheTest, RefillRefreshesInPlaceWithoutEviction) {
  HotDestinationCache cache;
  cache.configure(SimTime::from_sec(60.0), 2);
  cache.fill(record_for(VehicleId{1u}, SimTime::from_sec(1.0)),
             SimTime::from_sec(1.0));
  cache.fill(record_for(VehicleId{1u}, SimTime::from_sec(5.0)),
             SimTime::from_sec(5.0));
  EXPECT_EQ(cache.size(), 1u);
  const L1Record* r = cache.probe(VehicleId{1u}, SimTime::from_sec(5.0));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->time, SimTime::from_sec(5.0));
}

// --- batching window (unit) -------------------------------------------------

QueryPayload query_for(std::uint32_t id, VehicleId target) {
  QueryPayload q;
  q.query_id = QueryTracker::QueryId{id};
  q.target = target;
  return q;
}

TEST(BatcherTest, FirstArmsLaterHoldCapFlushes) {
  QueryBatcher b;
  const NodeId dest{7u};
  const VehicleId tgt{3u};
  EXPECT_EQ(b.add(dest, tgt, query_for(1, tgt), 3), QueryBatcher::Enqueue::kArmWindow);
  EXPECT_EQ(b.add(dest, tgt, query_for(2, tgt), 3), QueryBatcher::Enqueue::kHeld);
  EXPECT_EQ(b.add(dest, tgt, query_for(3, tgt), 3), QueryBatcher::Enqueue::kFlushNow);
  QueryBatcher::Batch batch = b.take(dest, tgt);
  EXPECT_EQ(batch.queries.size(), 3u);
  EXPECT_EQ(b.pending_batches(), 0u);
}

TEST(BatcherTest, DistinctDestinationsBatchIndependently) {
  QueryBatcher b;
  EXPECT_EQ(b.add(NodeId{1u}, VehicleId{9u}, query_for(1, VehicleId{9u}), 8),
            QueryBatcher::Enqueue::kArmWindow);
  EXPECT_EQ(b.add(NodeId{2u}, VehicleId{9u}, query_for(2, VehicleId{9u}), 8),
            QueryBatcher::Enqueue::kArmWindow);
  EXPECT_EQ(b.add(NodeId{1u}, VehicleId{4u}, query_for(3, VehicleId{4u}), 8),
            QueryBatcher::Enqueue::kArmWindow);
  EXPECT_EQ(b.pending_batches(), 3u);
  const std::vector<QueryBatcher::Batch> drained = b.drain_all();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(b.pending_batches(), 0u);
}

// --- knee analysis (unit) ---------------------------------------------------

TEST(KneeTest, PicksHighestAdmissibleRateAndBestGoodput) {
  std::vector<LoadPoint> pts(4);
  pts[0] = {4.0, 3.5, 100.0, 0.9, 0.9};
  pts[1] = {12.0, 10.0, 300.0, 0.85, 0.85};
  pts[2] = {36.0, 9.0, 900.0, 0.6, 0.6};    // goodput dips but still admissible
  pts[3] = {108.0, 2.0, 9000.0, 0.1, 0.1};  // busts the budget
  const KneeResult k = find_knee(pts, 1000.0, 0.5);
  ASSERT_TRUE(k.found);
  EXPECT_EQ(k.knee_rate, 36.0);
  // Sustained goodput tolerates the non-monotone dip: best admissible wins.
  EXPECT_EQ(k.sustained_goodput, 10.0);
  EXPECT_EQ(k.p99_at_knee_ms, 900.0);
}

TEST(KneeTest, NoAdmissiblePointReportsNotFound) {
  std::vector<LoadPoint> pts(1);
  pts[0] = {4.0, 3.5, 5000.0, 0.9, 0.9};
  EXPECT_FALSE(find_knee(pts, 1000.0, 0.5).found);
  EXPECT_FALSE(find_knee({}, 1000.0, 0.5).found);
}

// --- open-loop generator ----------------------------------------------------

TEST(OpenLoopTest, SameSeedSameArrivals) {
  World a(tier_scenario(), Protocol::kHlsrg);
  World b(tier_scenario(), Protocol::kHlsrg);
  a.run_until(tier_scenario().end_time());
  b.run_until(tier_scenario().end_time());
  ASSERT_NE(a.open_loop(), nullptr);
  ASSERT_NE(b.open_loop(), nullptr);
  EXPECT_GT(a.open_loop()->generated(), 0u);
  EXPECT_EQ(a.open_loop()->generated(), b.open_loop()->generated());
  EXPECT_EQ(a.metrics().queries_offered, b.metrics().queries_offered);
  EXPECT_EQ(state_digest(a), state_digest(b));
}

TEST(OpenLoopTest, RampedRateIsLinearAndClampedAtZero) {
  ScenarioConfig cfg = tier_scenario();
  cfg.service.open_loop_rate_per_sec = 10.0;
  cfg.service.open_loop_ramp_per_sec2 = -2.0;
  World w(cfg, Protocol::kHlsrg);
  ASSERT_NE(w.open_loop(), nullptr);
  const SimTime start = cfg.warmup;
  EXPECT_DOUBLE_EQ(w.open_loop()->rate_at(start), 10.0);
  EXPECT_DOUBLE_EQ(w.open_loop()->rate_at(start + SimTime::from_sec(3.0)), 4.0);
  // Negative ramps clamp instead of going negative.
  EXPECT_DOUBLE_EQ(w.open_loop()->rate_at(start + SimTime::from_sec(8.0)), 0.0);
}

TEST(OpenLoopTest, InertTierLeavesRunIdentical) {
  // enabled=true with every mechanism off must not perturb a single event:
  // the admission seam routes queries but draws nothing from any RNG stream.
  ScenarioConfig plain = paper_scenario(100, 7);
  plain.map.size_m = 1000.0;
  plain.query_window = SimTime::from_sec(10.0);
  plain.grace = SimTime::from_sec(15.0);
  ScenarioConfig inert = plain;
  inert.service.enabled = true;
  World a(plain, Protocol::kHlsrg);
  World b(inert, Protocol::kHlsrg);
  a.run_until(plain.end_time());
  b.run_until(inert.end_time());
  EXPECT_EQ(state_digest(a), state_digest(b));
  EXPECT_EQ(a.metrics().queries_issued, b.metrics().queries_issued);
  // The seam still accounts offered load even when it never sheds.
  EXPECT_EQ(b.metrics().queries_offered, b.metrics().queries_issued);
  EXPECT_EQ(b.metrics().queries_shed, 0u);
}

// --- admission control / shedding -------------------------------------------

TEST(AdmissionTest, ShedCountersCloseThroughConservationAuditor) {
  ScenarioConfig cfg = tier_scenario(43);
  cfg.service.open_loop_rate_per_sec = 40.0;
  cfg.service.max_outstanding = 4;  // absurdly tight: shedding must fire
  World w(cfg, Protocol::kHlsrg);
  w.run_until(cfg.end_time());
  const RunMetrics& m = w.metrics();
  EXPECT_GT(m.queries_offered, 0u);
  EXPECT_GT(m.queries_shed, 0u);
  // Every offered query either entered the protocol or was shed — never both,
  // never neither. Caching is off, so the split is exact.
  EXPECT_EQ(m.queries_offered, m.queries_issued + m.queries_shed);
  // Ledger shed column carries both shed kinds, and the auditor agrees.
  EXPECT_EQ(m.channel.total_shed(), m.queries_shed + m.retries_shed);
  const AuditReport report = conservation_report(w);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // Shed work never strands a query.
  EXPECT_EQ(m.queries_stranded, 0u);
}

TEST(AdmissionTest, UnboundedTierNeverSheds) {
  ScenarioConfig cfg = tier_scenario(44);
  cfg.service.max_outstanding = 0;
  World w(cfg, Protocol::kHlsrg);
  w.run_until(cfg.end_time());
  EXPECT_EQ(w.metrics().queries_shed, 0u);
  EXPECT_EQ(w.metrics().retries_shed, 0u);
  EXPECT_EQ(w.metrics().queries_offered, w.metrics().queries_issued);
}

// --- cache invalidation under live updates ----------------------------------

TEST(ServiceWorldTest, CacheInvalidationFiresAndConservationHolds) {
  ScenarioConfig cfg = tier_scenario(41);
  cfg.service.caching = true;
  cfg.service.cache_ttl = SimTime::from_sec(20.0);
  cfg.service.cache_capacity = 256;
  World w(cfg, Protocol::kHlsrg);
  w.run_until(cfg.end_time());
  const ServiceStats stats = w.service().service_stats();
  // Fills happen on the owner-RSU answer path; moving hot targets then push
  // fresher updates, which must invalidate the shadowing entries.
  EXPECT_GT(stats.cache_invalidations, 0u);
  const AuditReport report = conservation_report(w);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- batching window under RSU crash ----------------------------------------

TEST(ServiceWorldTest, MidWindowRsuCrashConservesQueries) {
  ScenarioConfig cfg = tier_scenario(42);
  cfg.service.open_loop_rate_per_sec = 30.0;
  cfg.service.hotspot_fraction = 1.0;
  cfg.hotspot_targets = 1;  // all co-destined: batches form constantly
  cfg.service.batching = true;
  cfg.service.batch_window = SimTime::from_ms(400.0);
  cfg.service.max_batch = 16;  // windows close by timer, stay open longer
  World w(cfg, Protocol::kHlsrg);
  auto& svc = static_cast<HlsrgService&>(w.service());

  // Step through the query window until some RSU holds an open batch, then
  // crash exactly that RSU mid-window.
  bool crashed = false;
  SimTime t = cfg.warmup;
  const SimTime window_end = cfg.warmup + cfg.query_window;
  while (!crashed && t < window_end) {
    t = t + SimTime::from_ms(100.0);
    w.run_until(t);
    for (std::size_t i = 0; i < svc.rsu_agents().size(); ++i) {
      if (svc.rsu_agents()[i].pending_batches() > 0) {
        svc.set_rsu_up(RsuId{i}, false);
        crashed = true;
        break;
      }
    }
  }
  ASSERT_TRUE(crashed) << "no batch ever formed; raise the rate";
  w.run_until(t + SimTime::from_sec(2.0));
  // Reboot so later queries have a full backbone again.
  for (std::size_t i = 0; i < svc.rsu_agents().size(); ++i) {
    if (!svc.rsu_agents()[i].up()) svc.set_rsu_up(RsuId{i}, true);
  }
  w.run_until(cfg.end_time());

  const RunMetrics& m = w.metrics();
  EXPECT_GT(m.batched_queries, 0u);
  // The crash dropped held queries, but their sources recover through the
  // retry path: nothing strands and the ledger still closes.
  EXPECT_EQ(m.queries_stranded, 0u);
  EXPECT_EQ(w.service().tracker().outstanding(), 0u);
  const AuditReport report = conservation_report(w);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- batching efficiency ----------------------------------------------------

TEST(ServiceWorldTest, BatchingReducesWiredQueryTraffic) {
  ScenarioConfig base = tier_scenario(45);
  base.service.open_loop_rate_per_sec = 30.0;
  base.service.hotspot_fraction = 1.0;
  base.hotspot_targets = 1;
  ScenarioConfig batched = base;
  batched.service.batching = true;
  batched.service.batch_window = SimTime::from_ms(200.0);
  batched.service.max_batch = 8;
  World a(base, Protocol::kHlsrg);
  World b(batched, Protocol::kHlsrg);
  a.run_until(base.end_time());
  b.run_until(batched.end_time());
  EXPECT_GT(b.metrics().batched_queries, 0u);
  EXPECT_GT(b.metrics().batch_flushes, 0u);
  // Each flush carried >= 1 query, each held query saved a wired message.
  EXPECT_GE(b.metrics().batched_queries, b.metrics().batch_flushes);
}

// --- ServiceStats across protocols ------------------------------------------

TEST(ServiceStatsTest, EveryProtocolReportsTableOccupancy) {
  ScenarioConfig cfg = paper_scenario(100, 5);
  cfg.map.size_m = 1000.0;
  cfg.query_window = SimTime::from_sec(10.0);
  cfg.grace = SimTime::from_sec(10.0);
  for (const Protocol p : {Protocol::kHlsrg, Protocol::kRlsmp}) {
    World w(cfg, p);
    w.run_until(cfg.warmup + SimTime::from_sec(5.0));
    EXPECT_GT(w.service().service_stats().table_records, 0u)
        << "protocol " << static_cast<int>(p);
  }
}

}  // namespace
}  // namespace hlsrg
