// Infrastructure-churn tests: the RSU reboot rebuild-from-beacons path, the
// parked-cars-as-RSUs role lifecycle (election, table handoff, degradation),
// the record conservation ledger, and the zero-churn inertness guarantee.
#include <gtest/gtest.h>

#include <utility>

#include "core/churn_manager.h"
#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "fault/fault_plan.h"
#include "harness/digest.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "infra/role_directory.h"
#include "mobility/mobility_model.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

HlsrgService& hlsrg_of(World& world) {
  return static_cast<HlsrgService&>(world.service());
}

// --- RSU reboot: rebuild from beacons ---------------------------------------

// The fallback every handoff failure leans on: a rebooted RSU agent comes
// back empty and refills its tables from the update/aggregation traffic
// alone. Previously only exercised indirectly through the chaos benches.
TEST(RsuRebootTest, RebootWipesTablesAndRebuildsFromBeacons) {
  ScenarioConfig cfg = paper_scenario(150, 77);
  cfg.map.size_m = 1000.0;
  cfg.query_window = SimTime::from_sec(10.0);
  cfg.grace = SimTime::from_sec(30.0);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(70.0));

  HlsrgService& svc = hlsrg_of(world);
  HlsrgRsuAgent* rsu = nullptr;
  for (std::size_t i = 0; i < svc.rsu_agents().size(); ++i) {
    HlsrgRsuAgent& agent = svc.rsu_agent(RsuId{i});
    if (agent.level() == GridLevel::kL2 && agent.l2_table().size() > 0) {
      rsu = &agent;
      break;
    }
  }
  ASSERT_NE(rsu, nullptr) << "no populated L2 RSU after warmup";

  rsu->set_up(false);
  rsu->set_up(true);
  EXPECT_EQ(rsu->l2_table().size(), 0u);
  EXPECT_EQ(rsu->l3_table().size(), 0u);
  EXPECT_EQ(rsu->full_table().size(), 0u);

  // The periodic update traffic alone restocks the reborn agent.
  world.run_until(SimTime::from_sec(95.0));
  EXPECT_GT(rsu->l2_table().size(), 0u);
  EXPECT_TRUE(world.audit_now().ok()) << world.audit_now().to_string();
}

// --- parked-cars-as-RSUs ----------------------------------------------------

ScenarioConfig churn_scenario(std::uint64_t seed) {
  ScenarioConfig cfg = paper_scenario(250, seed);
  cfg.map.size_m = 2000.0;
  cfg.query_window = SimTime::from_sec(20.0);
  cfg.grace = SimTime::from_sec(30.0);
  cfg.mobility.parked_fraction = 0.35;
  cfg.mobility.churn.enabled = true;
  cfg.mobility.churn.park_rate_per_sec = 0.005;
  cfg.mobility.churn.dwell_mean_sec = 40.0;
  cfg.mobility.churn.min_dwell_sec = 10.0;
  cfg.hlsrg.parked_rsu_hosting = true;
  cfg.hlsrg.host_radius_m = 600.0;
  return cfg;
}

TEST(ChurnWorldTest, NaturalChurnConservesRecordsAndAuditsClean) {
  World world(churn_scenario(5100), Protocol::kHlsrg);
  const RunMetrics m = world.run();
  EXPECT_EQ(m.churn_active, 1u);
  EXPECT_GT(m.role_departures, 0u) << "scenario produced no host churn";
  // The conservation law the ChurnAuditor enforces, checked directly: every
  // record held at a departure was delivered, expired, or is in flight.
  EXPECT_EQ(m.records_at_departure, m.handoff_records_delivered +
                                        m.handoff_records_expired +
                                        m.handoff_records_in_flight);
  // World::run() expires leftovers at the horizon, so in flight is zero.
  EXPECT_EQ(m.handoff_records_in_flight, 0u);
  EXPECT_EQ(m.role_departures, m.role_elections + m.role_vacancies);
  EXPECT_TRUE(world.audit_now().ok()) << world.audit_now().to_string();
}

TEST(ChurnWorldTest, HandoffShipsRecordsAndControlExpiresThem) {
  ScenarioConfig cfg = churn_scenario(5100);
  World with(cfg, Protocol::kHlsrg);
  const RunMetrics m = with.run();
  EXPECT_GT(m.handoffs_sent, 0u);
  EXPECT_GT(m.handoff_records_delivered, 0u);

  cfg.hlsrg.enable_handoff = false;
  World without(cfg, Protocol::kHlsrg);
  const RunMetrics c = without.run();
  EXPECT_EQ(c.handoffs_sent, 0u);
  EXPECT_EQ(c.handoff_records_sent, 0u);
  // Every snapshotted record is ledger-accounted as expired: the successor
  // rebuilds from beacons, nothing vanishes silently.
  EXPECT_EQ(c.handoff_records_expired, c.records_at_departure);
  EXPECT_TRUE(without.audit_now().ok()) << without.audit_now().to_string();
}

TEST(ChurnWorldTest, BurstDepartureChaosAuditsCleanAndHandoffHelps) {
  ScenarioConfig cfg = churn_scenario(5200);
  FaultWindow burst;
  burst.kind = FaultKind::kChurn;
  burst.begin = SimTime::from_sec(65.0);
  burst.end = SimTime::from_sec(75.0);
  burst.depart_fraction = 0.6;
  cfg.fault_plan.windows.push_back(burst);

  World with(cfg, Protocol::kHlsrg);
  const RunMetrics m = with.run();
  EXPECT_GT(m.role_vacancies + m.role_elections, 0u);
  EXPECT_TRUE(with.audit_now().ok()) << with.audit_now().to_string();

  ScenarioConfig control_cfg = cfg;
  control_cfg.hlsrg.enable_handoff = false;
  World control(control_cfg, Protocol::kHlsrg);
  const RunMetrics c = control.run();
  EXPECT_TRUE(control.audit_now().ok()) << control.audit_now().to_string();
  // The burst forces abrupt departures on both sides; the handoff variant
  // must not lose to rebuilding everything from beacons (the strict ">"
  // acceptance gate runs at bench scale in bench/churn_frontier.cpp).
  EXPECT_GE(m.queries_succeeded, c.queries_succeeded);
}

TEST(ChurnWorldTest, RoleDirectoryBindingsMatchTheWorld) {
  World world(churn_scenario(5300), Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(80.0));
  HlsrgService& svc = hlsrg_of(world);
  ASSERT_NE(svc.churn(), nullptr);
  const RoleDirectory& directory = svc.churn()->directory();
  ASSERT_GT(directory.role_count(), 0u);
  std::size_t staffed = 0;
  for (std::size_t i = 0; i < directory.role_count(); ++i) {
    const RoleBinding& b = directory.binding(RsuId{i});
    if (b.kind == RoleHostKind::kNone) {
      EXPECT_FALSE(svc.rsu_agent(RsuId{i}).up());
      continue;
    }
    ++staffed;
    ASSERT_EQ(b.kind, RoleHostKind::kParkedVehicle);
    ASSERT_TRUE(b.host.valid());
    EXPECT_TRUE(world.mobility().parked(b.host));
  }
  EXPECT_GT(staffed, 0u) << "no role ever found a parked host";
}

TEST(ChurnWorldTest, HandoffPayloadOrderIsSemanticallyInert) {
  // snapshot_role() ships tables in dense arena order (no sort) — see
  // churn_manager.cpp. The receiver re-keys every record through
  // newest-wins merges, so any permutation of the payload must rebuild the
  // same table: contents and canonical snapshot identical.
  std::vector<L1Record> records;
  for (std::uint32_t i = 0; i < 200; ++i) {
    L1Record rec;
    rec.vehicle = VehicleId{i};
    rec.time = SimTime::from_sec(1.0 + static_cast<double>(i % 17));
    rec.pos = Vec2{static_cast<double>(i), static_cast<double>(i % 7)};
    records.push_back(rec);
  }
  std::vector<L1Record> reversed(records.rbegin(), records.rend());
  // Interleave a stale duplicate per vehicle into one payload only: the
  // newest-wins merge must drop it regardless of where it sits.
  std::vector<L1Record> with_stale;
  for (const L1Record& rec : reversed) {
    L1Record stale = rec;
    stale.time = rec.time - SimTime::from_sec(0.5);
    stale.pos = Vec2{-1.0, -1.0};
    with_stale.push_back(stale);
    with_stale.push_back(rec);
  }

  L1Table sorted_merge;
  sorted_merge.merge(records);
  L1Table permuted_merge;
  permuted_merge.merge(with_stale);

  ASSERT_EQ(sorted_merge.size(), permuted_merge.size());
  const std::vector<L1Record> a = sorted_merge.snapshot();
  const std::vector<L1Record> b = permuted_merge.snapshot();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vehicle, b[i].vehicle);
    EXPECT_EQ(a[i].time.us(), b[i].time.us());
    EXPECT_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_EQ(a[i].pos.y, b[i].pos.y);
  }
}

TEST(ChurnWorldTest, ZeroChurnKnobsAreByteInert) {
  // Touching every churn knob while leaving the two enable switches off must
  // not move a single bit of the end state.
  ScenarioConfig plain = paper_scenario(150, 91);
  plain.map.size_m = 1000.0;
  plain.query_window = SimTime::from_sec(10.0);
  plain.grace = SimTime::from_sec(20.0);
  ScenarioConfig knobs = plain;
  knobs.hlsrg.host_radius_m = 50.0;
  knobs.hlsrg.enable_handoff = false;
  knobs.hlsrg.role_fill_delay = SimTime::from_sec(9.0);
  knobs.hlsrg.churn_detect_delay = SimTime::from_sec(1.0);
  knobs.mobility.churn.park_rate_per_sec = 0.9;
  knobs.mobility.churn.dwell_mean_sec = 2.0;
  knobs.mobility.churn.min_dwell_sec = 0.5;

  World a(plain, Protocol::kHlsrg);
  World b(knobs, Protocol::kHlsrg);
  const RunMetrics ma = a.run();
  const RunMetrics mb = b.run();
  EXPECT_EQ(ma.churn_active, 0u);
  EXPECT_EQ(mb.churn_active, 0u);
  EXPECT_EQ(state_digest(a), state_digest(b));
}

}  // namespace
}  // namespace hlsrg
