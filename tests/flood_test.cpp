// Tests for the flooding-based baseline and the taxonomy claims built on it.
#include <gtest/gtest.h>

#include "flood/flood_agent.h"
#include "flood/flood_service.h"
#include "harness/world.h"

namespace hlsrg {
namespace {

TEST(FloodServiceTest, QueriesSucceedViaCaches) {
  ScenarioConfig cfg = paper_scenario(250, 51);
  World world(cfg, Protocol::kFlood);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  // Everyone-knows-everyone dissemination answers nearly every query.
  EXPECT_GT(m.success_rate(), 0.85);
}

TEST(FloodServiceTest, CachesFillDuringWarmup) {
  ScenarioConfig cfg = paper_scenario(200, 52);
  World world(cfg, Protocol::kFlood);
  world.run_until(SimTime::from_sec(90));
  auto& svc = dynamic_cast<FloodService&>(world.service());
  std::size_t total = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    total += svc.vehicle_agent(VehicleId{i}).cache_size();
  }
  // Average cache knows a large share of the fleet.
  EXPECT_GT(total / 200, 200u / 4);
}

TEST(FloodServiceTest, UpdateAirtimeDwarfsHlsrg) {
  // The paper's taxonomy argument: flooding burns orders of magnitude more
  // airtime than the rendezvous design for the same coverage.
  ScenarioConfig cfg = paper_scenario(250, 53);
  World flood(cfg, Protocol::kFlood);
  World hlsrg(cfg, Protocol::kHlsrg);
  const auto flood_tx = flood.run().update_transmissions;
  const auto hlsrg_tx = hlsrg.run().update_transmissions +
                        hlsrg.metrics().aggregation_transmissions;
  EXPECT_GT(flood_tx, 20 * hlsrg_tx);
}

TEST(FloodServiceTest, DistanceTriggerScalesUpdateCount) {
  ScenarioConfig fine = paper_scenario(150, 54);
  fine.flood.update_distance_m = 200.0;
  ScenarioConfig coarse = paper_scenario(150, 54);
  coarse.flood.update_distance_m = 800.0;
  World a(fine, Protocol::kFlood);
  World b(coarse, Protocol::kFlood);
  EXPECT_GT(a.run().update_packets_originated,
            2 * b.run().update_packets_originated);
}

TEST(FloodServiceTest, DeterministicPerSeed) {
  ScenarioConfig cfg = paper_scenario(150, 55);
  World a(cfg, Protocol::kFlood);
  World b(cfg, Protocol::kFlood);
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().update_transmissions, b.metrics().update_transmissions);
  EXPECT_EQ(a.metrics().queries_succeeded, b.metrics().queries_succeeded);
}

}  // namespace
}  // namespace hlsrg
