// Tests for the report subsystem: the JSON document model (writer + parser)
// and the RunReport serializer round trip.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "report/bench_report.h"
#include "report/json.h"
#include "report/run_report.h"

namespace hlsrg {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::uint64_t{1234567890123}).dump(), "1234567890123");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  const auto parsed = JsonValue::parse("\"a\\\"b\\\\c\\nd\\u0041\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "a\"b\\c\ndA");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  JsonValue o = JsonValue::object();
  o.set("b", 1);
  o.set("a", 2);
  o.set("b", 3);  // replace keeps position
  EXPECT_EQ(o.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(o.at("b").as_int(), 3);
  EXPECT_TRUE(o.at("missing").is_null());
  EXPECT_FALSE(o.contains("missing"));
}

TEST(JsonTest, RoundTripNested) {
  JsonValue o = JsonValue::object();
  o.set("name", "bench");
  o.set("n", 3);
  o.set("ok", true);
  o.set("nothing", JsonValue());
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back(2.25);
  JsonValue inner = JsonValue::object();
  inner.set("x", -7);
  arr.push_back(std::move(inner));
  o.set("items", std::move(arr));

  for (const int indent : {0, 2}) {
    const std::string text = o.dump(indent);
    std::string error;
    const auto parsed = JsonValue::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->dump(), o.dump());
  }
}

TEST(JsonTest, ParseErrors) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("{", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("[1,]", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("123 456", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(JsonValue::parse("tru", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, ParseAcceptsWhitespaceAndNumbers) {
  const auto v = JsonValue::parse(" { \"a\" : [ -1.5e2 , 0 ] } ");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->at("a").items()[0].as_double(), -150.0);
  EXPECT_DOUBLE_EQ(v->at("a").items()[1].as_double(), 0.0);
}

RunMetrics sample_metrics() {
  RunMetrics m;
  m.update_packets_originated = 553;
  m.update_transmissions = 1200;
  m.aggregation_packets = 77;
  m.aggregation_transmissions = 91;
  m.queries_issued = 30;
  m.queries_succeeded = 24;
  m.queries_failed = 6;
  m.query_packets_originated = 60;
  m.query_transmissions = 2055;
  m.server_lookup_hits = 18;
  m.server_lookup_misses = 12;
  m.rsu_lookup_hits = 9;
  m.rsu_lookup_misses = 3;
  m.notifications_sent = 24;
  m.acks_sent = 24;
  m.radio_broadcasts = 4000;
  m.radio_unicasts = 900;
  m.radio_drops = 55;
  m.wired_messages = 140;
  m.gpsr_failures = 4;
  m.query_latency.add(SimTime::from_ms(120.0));
  m.query_latency.add(SimTime::from_ms(80.0));
  m.query_latency.add(SimTime::from_ms(500.0));
  return m;
}

TEST(RunReportTest, JsonRoundTripFieldEquality) {
  ScenarioConfig cfg = paper_scenario(450, 77);
  cfg.map.irregular = true;
  cfg.partition.target_size = 400.0;
  cfg.radio.range_m = 450.0;
  cfg.workload = ScenarioConfig::WorkloadKind::kHotspot;
  cfg.source_fraction = 0.2;
  cfg.poisson_rate_per_sec = 2.5;
  cfg.hotspot_targets = 7;
  cfg.warmup = SimTime::from_sec(45.0);
  cfg.query_window = SimTime::from_sec(20.0);
  cfg.grace = SimTime::from_sec(30.0);
  cfg.mobility.parked_fraction = 0.25;
  cfg.hlsrg.use_rsus = false;
  cfg.hlsrg.suppress_artery_updates = false;
  cfg.hlsrg.l1_expiry = SimTime::from_sec(90.0);

  EngineStats engine;
  engine.events_processed = 46121;
  engine.events_scheduled = 46504;
  engine.peak_queue_depth = 930;
  engine.sim_time_sec = 150.0;
  engine.wall_clock_sec = 0.0625;
  engine.peak_rss_bytes = 123456789;
  engine.table_bytes = 424242;

  const RunReport report =
      make_run_report(Protocol::kHlsrg, cfg, sample_metrics(), engine);

  // Serialize, re-parse the text, deserialize, and compare every field.
  std::string error;
  const auto doc = JsonValue::parse(report.to_json().dump(2), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  RunReport back;
  ASSERT_TRUE(RunReport::from_json(*doc, &back, &error)) << error;

  EXPECT_EQ(back.protocol, "HLSRG");

  // Scenario config subset.
  EXPECT_EQ(back.config.seed, cfg.seed);
  EXPECT_EQ(back.config.vehicles, cfg.vehicles);
  EXPECT_DOUBLE_EQ(back.config.map.size_m, cfg.map.size_m);
  EXPECT_EQ(back.config.map.irregular, cfg.map.irregular);
  EXPECT_DOUBLE_EQ(back.config.partition.target_size,
                   cfg.partition.target_size);
  EXPECT_DOUBLE_EQ(back.config.radio.range_m, cfg.radio.range_m);
  EXPECT_EQ(back.config.workload, cfg.workload);
  EXPECT_DOUBLE_EQ(back.config.source_fraction, cfg.source_fraction);
  EXPECT_DOUBLE_EQ(back.config.poisson_rate_per_sec, cfg.poisson_rate_per_sec);
  EXPECT_EQ(back.config.hotspot_targets, cfg.hotspot_targets);
  EXPECT_EQ(back.config.warmup, cfg.warmup);
  EXPECT_EQ(back.config.query_window, cfg.query_window);
  EXPECT_EQ(back.config.grace, cfg.grace);
  EXPECT_DOUBLE_EQ(back.config.mobility.parked_fraction,
                   cfg.mobility.parked_fraction);
  EXPECT_EQ(back.config.hlsrg.use_rsus, cfg.hlsrg.use_rsus);
  EXPECT_EQ(back.config.hlsrg.suppress_artery_updates,
            cfg.hlsrg.suppress_artery_updates);
  EXPECT_EQ(back.config.hlsrg.l1_expiry, cfg.hlsrg.l1_expiry);

  // Counters.
  const RunMetrics& a = report.metrics;
  const RunMetrics& b = back.metrics;
  EXPECT_EQ(b.update_packets_originated, a.update_packets_originated);
  EXPECT_EQ(b.update_transmissions, a.update_transmissions);
  EXPECT_EQ(b.aggregation_packets, a.aggregation_packets);
  EXPECT_EQ(b.aggregation_transmissions, a.aggregation_transmissions);
  EXPECT_EQ(b.queries_issued, a.queries_issued);
  EXPECT_EQ(b.queries_succeeded, a.queries_succeeded);
  EXPECT_EQ(b.queries_failed, a.queries_failed);
  EXPECT_EQ(b.query_packets_originated, a.query_packets_originated);
  EXPECT_EQ(b.query_transmissions, a.query_transmissions);
  EXPECT_EQ(b.server_lookup_hits, a.server_lookup_hits);
  EXPECT_EQ(b.server_lookup_misses, a.server_lookup_misses);
  EXPECT_EQ(b.rsu_lookup_hits, a.rsu_lookup_hits);
  EXPECT_EQ(b.rsu_lookup_misses, a.rsu_lookup_misses);
  EXPECT_EQ(b.notifications_sent, a.notifications_sent);
  EXPECT_EQ(b.acks_sent, a.acks_sent);
  EXPECT_EQ(b.radio_broadcasts, a.radio_broadcasts);
  EXPECT_EQ(b.radio_unicasts, a.radio_unicasts);
  EXPECT_EQ(b.radio_drops, a.radio_drops);
  EXPECT_EQ(b.wired_messages, a.wired_messages);
  EXPECT_EQ(b.gpsr_failures, a.gpsr_failures);

  // Latency digest.
  EXPECT_EQ(back.latency.count, report.latency.count);
  EXPECT_DOUBLE_EQ(back.latency.mean_ms, report.latency.mean_ms);
  EXPECT_DOUBLE_EQ(back.latency.min_ms, report.latency.min_ms);
  EXPECT_DOUBLE_EQ(back.latency.max_ms, report.latency.max_ms);
  EXPECT_DOUBLE_EQ(back.latency.p50_ms, report.latency.p50_ms);
  EXPECT_DOUBLE_EQ(back.latency.p95_ms, report.latency.p95_ms);
  EXPECT_DOUBLE_EQ(back.latency.p99_ms, report.latency.p99_ms);

  // Engine stats.
  EXPECT_EQ(back.engine.events_processed, engine.events_processed);
  EXPECT_EQ(back.engine.events_scheduled, engine.events_scheduled);
  EXPECT_EQ(back.engine.peak_queue_depth, engine.peak_queue_depth);
  EXPECT_DOUBLE_EQ(back.engine.sim_time_sec, engine.sim_time_sec);
  EXPECT_DOUBLE_EQ(back.engine.wall_clock_sec, engine.wall_clock_sec);
  EXPECT_EQ(back.engine.peak_rss_bytes, engine.peak_rss_bytes);
  EXPECT_EQ(back.engine.table_bytes, engine.table_bytes);
}

TEST(RunReportTest, FromJsonRejectsMalformed) {
  RunReport out;
  std::string error;
  EXPECT_FALSE(RunReport::from_json(JsonValue(3.0), &out, &error));
  JsonValue incomplete = JsonValue::object();
  incomplete.set("protocol", "HLSRG");
  EXPECT_FALSE(RunReport::from_json(incomplete, &out, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);
}

TEST(BenchReportTest, SectionsRowsAndResults) {
  BenchReport report("unit_bench", 2);
  report.begin_section("section one", "success");

  ReplicaSet set;
  set.replicas.resize(2);
  set.engine.resize(2);
  set.engine[0].events_processed = 10;
  set.engine[0].wall_clock_sec = 0.5;
  set.engine[1].events_processed = 30;
  set.engine[1].wall_clock_sec = 0.25;
  for (const EngineStats& e : set.engine) set.engine_total.merge(e);
  set.merged = sample_metrics();

  const ScenarioConfig cfg = paper_scenario(300, 9);
  report.add_result("point A", "HLSRG", cfg, set);
  report.add_result("point A", "RLSMP", cfg, set);
  report.add_result("point B", "HLSRG", cfg, set);

  const JsonValue doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), kBenchSchema);
  EXPECT_EQ(doc.at("bench").as_string(), "unit_bench");
  EXPECT_EQ(doc.at("replicas").as_int(), 2);
  ASSERT_EQ(doc.at("sections").size(), 1u);
  const JsonValue& rows = doc.at("sections").items()[0].at("rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.items()[0].at("label").as_string(), "point A");
  EXPECT_EQ(rows.items()[0].at("results").size(), 2u);
  EXPECT_EQ(rows.items()[1].at("results").size(), 1u);

  const JsonValue& first = rows.items()[0].at("results").items()[0];
  EXPECT_EQ(first.at("protocol").as_string(), "HLSRG");
  EXPECT_EQ(first.at("replica_engine").size(), 2u);
  EXPECT_EQ(first.at("engine").at("events_processed").as_uint64(), 40u);
  // Merged-over-2-replicas derived value: 553 update packets / 2.
  EXPECT_DOUBLE_EQ(first.at("derived").at("update_overhead").as_double(),
                   553.0 / 2.0);

  // The whole document survives a text round trip.
  const auto parsed = JsonValue::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), doc.dump());
}

TEST(FaultPlanReportTest, PlanSurvivesAFileRoundTrip) {
  FaultPlan plan;
  plan.fault_seed = 1234;
  plan.overrides.retry_backoff_base = 2.0;
  FaultWindow w;
  w.kind = FaultKind::kRadioLoss;
  w.begin = SimTime::from_sec(50.0);
  w.end = SimTime::from_sec(85.0);
  w.has_box = true;
  w.box = Aabb{{2000.0, 0.0}, {4000.0, 4000.0}};
  w.extra_loss = 0.5;
  plan.windows.push_back(w);

  const std::string path =
      ::testing::TempDir() + "/hlsrg_fault_plan_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_json_file(plan.to_json(), path, &error)) << error;
  FaultPlan back;
  ASSERT_TRUE(FaultPlan::load(path, &back, &error)) << error;
  EXPECT_EQ(back.digest(), plan.digest());
  EXPECT_EQ(back.fault_seed, 1234u);
  ASSERT_EQ(back.windows.size(), 1u);
  EXPECT_TRUE(back.windows[0].has_box);
  EXPECT_DOUBLE_EQ(back.windows[0].box.hi.x, 4000.0);
}

TEST(FaultPlanReportTest, RunReportRoundTripsFaultMetrics) {
  RunReport report;
  report.protocol = "HLSRG";
  report.config = paper_scenario(100, 3);
  report.config.fault_plan_file = "plans/chaos.json";
  report.config.fault_seed = 7;
  report.metrics.queries_issued = 10;
  report.metrics.wired_drops = 4;
  report.metrics.rsu_suppressed = 6;
  report.metrics.query_retries = 5;
  report.metrics.query_failovers = 2;
  report.metrics.queries_stranded = 1;
  report.metrics.fault_queries_issued = 8;
  report.metrics.fault_queries_ok = 6;
  report.metrics.recovery_time_us = 1500000;
  report.metrics.recovery_windows = 2;
  report.metrics.fault_plan_digest = 0xabcdef;

  RunReport back;
  std::string error;
  ASSERT_TRUE(RunReport::from_json(report.to_json(), &back, &error)) << error;
  EXPECT_EQ(back.config.fault_plan_file, "plans/chaos.json");
  EXPECT_EQ(back.config.fault_seed, 7u);
  EXPECT_EQ(back.metrics.wired_drops, 4u);
  EXPECT_EQ(back.metrics.rsu_suppressed, 6u);
  EXPECT_EQ(back.metrics.query_retries, 5u);
  EXPECT_EQ(back.metrics.query_failovers, 2u);
  EXPECT_EQ(back.metrics.queries_stranded, 1u);
  EXPECT_EQ(back.metrics.fault_queries_issued, 8u);
  EXPECT_EQ(back.metrics.fault_queries_ok, 6u);
  EXPECT_EQ(back.metrics.fault_plan_digest, 0xabcdefu);
  EXPECT_DOUBLE_EQ(back.metrics.availability(), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(back.metrics.recovery_ms(), 750.0);
}

}  // namespace
}  // namespace hlsrg
