// Tests for geom: vectors, boxes, segments, corridors, angles.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec2.h"
#include "sim/rng.h"

namespace hlsrg {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -1};
  EXPECT_EQ(a + b, (Vec2{4, 1}));
  EXPECT_EQ(a - b, (Vec2{-2, 3}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_EQ(2.0 * a, (Vec2{2, 4}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1}));
}

TEST(Vec2Test, DotCrossNorm) {
  const Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ((a.dot({1, 0})), 3.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 0}.cross({0, 1})), 1.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}.cross({1, 0})), -1.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2{}.normalized(), (Vec2{}));
  const Vec2 u = Vec2{10, 0}.normalized();
  EXPECT_DOUBLE_EQ(u.x, 1.0);
  EXPECT_DOUBLE_EQ(u.y, 0.0);
}

TEST(Vec2Test, PerpIsCounterClockwise) {
  EXPECT_EQ((Vec2{1, 0}.perp()), (Vec2{0, 1}));
  EXPECT_EQ((Vec2{0, 1}.perp()), (Vec2{-1, 0}));
}

TEST(Vec2Test, AngleQuadrants) {
  EXPECT_DOUBLE_EQ((Vec2{1, 0}.angle()), 0.0);
  EXPECT_DOUBLE_EQ((Vec2{0, 1}.angle()), kPi / 2);
  EXPECT_DOUBLE_EQ((Vec2{-1, 0}.angle()), kPi);
  EXPECT_DOUBLE_EQ((Vec2{0, -1}.angle()), -kPi / 2);
}

// --- Aabb --------------------------------------------------------------------

TEST(AabbTest, HalfOpenContainment) {
  const Aabb box{{0, 0}, {10, 10}};
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({9.999, 9.999}));
  EXPECT_FALSE(box.contains({10, 5}));
  EXPECT_FALSE(box.contains({5, 10}));
  EXPECT_FALSE(box.contains({-0.001, 5}));
}

TEST(AabbTest, AdjacentBoxesTileWithoutOverlap) {
  const Aabb left{{0, 0}, {10, 10}};
  const Aabb right{{10, 0}, {20, 10}};
  const Vec2 boundary{10, 5};
  EXPECT_FALSE(left.contains(boundary));
  EXPECT_TRUE(right.contains(boundary));
}

TEST(AabbTest, ClosedContainmentWithEps) {
  const Aabb box{{0, 0}, {10, 10}};
  EXPECT_TRUE(box.contains_closed({10, 10}));
  EXPECT_TRUE(box.contains_closed({10.5, 5}, 0.5));
  EXPECT_FALSE(box.contains_closed({11, 5}, 0.5));
}

TEST(AabbTest, CenterWidthHeight) {
  const Aabb box{{0, 0}, {10, 20}};
  EXPECT_EQ(box.center(), (Vec2{5, 10}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 20.0);
}

TEST(AabbTest, MergedAndInflated) {
  const Aabb a{{0, 0}, {1, 1}};
  const Aabb b{{5, -2}, {6, 0.5}};
  const Aabb m = a.merged(b);
  EXPECT_EQ(m.lo, (Vec2{0, -2}));
  EXPECT_EQ(m.hi, (Vec2{6, 1}));
  const Aabb g = a.inflated(2.0);
  EXPECT_EQ(g.lo, (Vec2{-2, -2}));
  EXPECT_EQ(g.hi, (Vec2{3, 3}));
}

TEST(AabbTest, DistanceToPoint) {
  const Aabb box{{0, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(box.distance_to({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(box.distance_to({13, 5}), 3.0);
  EXPECT_DOUBLE_EQ(box.distance_to({13, 14}), 5.0);
}

// --- LineSegment ---------------------------------------------------------------

TEST(LineSegmentTest, ProjectClampsToEndpoints) {
  const LineSegment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(s.project({5, 3}), 0.5);
  EXPECT_DOUBLE_EQ(s.project({-5, 0}), 0.0);
  EXPECT_DOUBLE_EQ(s.project({15, 0}), 1.0);
}

TEST(LineSegmentTest, DistanceToPoint) {
  const LineSegment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(s.distance_to({5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(s.distance_to({-3, 4}), 5.0);
}

TEST(LineSegmentTest, DegenerateSegment) {
  const LineSegment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(s.project({5, 2}), 0.0);
  EXPECT_DOUBLE_EQ(s.distance_to({5, 2}), 3.0);
}

// --- corridors -------------------------------------------------------------------

TEST(CorridorTest, PointAheadInsideWidth) {
  EXPECT_TRUE(in_corridor({100, 5}, {0, 0}, {1, 0}, 10, 500));
  EXPECT_FALSE(in_corridor({100, 15}, {0, 0}, {1, 0}, 10, 500));
}

TEST(CorridorTest, PointBehindRejectedUnlessSlack) {
  EXPECT_FALSE(in_corridor({-50, 0}, {0, 0}, {1, 0}, 10, 500, 0));
  EXPECT_TRUE(in_corridor({-50, 0}, {0, 0}, {1, 0}, 10, 500, 100));
}

TEST(CorridorTest, PointBeyondMaxAheadRejected) {
  EXPECT_FALSE(in_corridor({600, 0}, {0, 0}, {1, 0}, 10, 500));
  EXPECT_TRUE(in_corridor({499, 0}, {0, 0}, {1, 0}, 10, 500));
}

TEST(CorridorTest, NonUnitDirectionIsNormalized) {
  EXPECT_TRUE(in_corridor({0, 100}, {0, 0}, {0, 42}, 10, 500));
}

TEST(CorridorTest, ZeroDirectionFallsBackToDisk) {
  EXPECT_TRUE(in_corridor({3, 4}, {0, 0}, {0, 0}, 5.5, 100));
  EXPECT_FALSE(in_corridor({30, 40}, {0, 0}, {0, 0}, 5.5, 100));
}

// --- intersections ------------------------------------------------------------------

TEST(SegmentsIntersectTest, CrossingSegments) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
}

TEST(SegmentsIntersectTest, DisjointSegments) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {5, 5}, {6, 6}));
}

TEST(SegmentsIntersectTest, TouchingEndpoints) {
  EXPECT_TRUE(segments_intersect({0, 0}, {5, 5}, {5, 5}, {10, 0}));
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {10, 0}, {5, 0}, {15, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {4, 0}, {5, 0}, {15, 0}));
}

// --- angles ---------------------------------------------------------------------------

TEST(AngleTest, NormalizeIntoHalfOpenRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(3 * kPi), kPi);
  EXPECT_DOUBLE_EQ(normalize_angle(-3 * kPi), kPi);
  EXPECT_DOUBLE_EQ(normalize_angle(0.5), 0.5);
}

TEST(AngleTest, AngleBetweenIsSymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(angle_between(0.0, kPi / 2), kPi / 2);
  EXPECT_DOUBLE_EQ(angle_between(kPi / 2, 0.0), kPi / 2);
  EXPECT_NEAR(angle_between(-kPi + 0.1, kPi - 0.1), 0.2, 1e-12);
}

// Property sweep: angle_between stays in [0, pi] for random inputs.
class AngleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AngleProperty, AngleBetweenInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-10.0, 10.0);
    const double b = rng.uniform(-10.0, 10.0);
    const double d = angle_between(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kPi + 1e-12);
    EXPECT_NEAR(d, angle_between(b, a), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AngleProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 99u));

// Property sweep: corridor membership is invariant under rigid rotation.
class CorridorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorridorProperty, RotationInvariance) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.uniform(-500, 500), rng.uniform(-500, 500)};
    const double theta = rng.uniform(0.0, 2 * kPi);
    const Vec2 dir{std::cos(theta), std::sin(theta)};
    const double hw = rng.uniform(1.0, 100.0);
    const double ahead = rng.uniform(10.0, 1000.0);
    const bool base = in_corridor(p, {0, 0}, {1, 0}, hw, ahead);
    // Rotate both the point and direction by theta.
    const Vec2 rp{p.x * std::cos(theta) - p.y * std::sin(theta),
                  p.x * std::sin(theta) + p.y * std::cos(theta)};
    const bool rotated = in_corridor(rp, {0, 0}, dir, hw, ahead);
    EXPECT_EQ(base, rotated) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorridorProperty,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace hlsrg
