// Tests for util/ordered.h — the sorted snapshot views that make iteration
// over hash containers deterministic (DESIGN.md §12, lint rule
// `unordered-iteration`).
#include "util/ordered.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hlsrg {
namespace {

TEST(SortedView, IteratesMapEntriesInKeyOrder) {
  std::unordered_map<int, std::string> m;
  for (int k : {7, 1, 42, 3, 19}) m.emplace(k, "v" + std::to_string(k));

  std::vector<int> keys;
  for (const auto* e : det::sorted_view(m)) keys.push_back(e->first);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 7, 19, 42}));
}

TEST(SortedView, EntriesAreMutableThroughTheView) {
  std::unordered_map<int, int> m{{1, 10}, {2, 20}, {3, 30}};
  for (auto* e : det::sorted_view(m)) e->second += 1;
  EXPECT_EQ(m[1], 11);
  EXPECT_EQ(m[2], 21);
  EXPECT_EQ(m[3], 31);
}

TEST(SortedView, CustomComparatorReversesOrder) {
  std::unordered_map<int, int> m{{1, 0}, {5, 0}, {3, 0}};
  std::vector<int> keys;
  for (const auto* e :
       det::sorted_view(m, [](int a, int b) { return a > b; })) {
    keys.push_back(e->first);
  }
  EXPECT_EQ(keys, (std::vector<int>{5, 3, 1}));
}

TEST(SortedView, ConstMapYieldsConstView) {
  const std::unordered_map<int, int> m{{2, 20}, {1, 10}};
  auto view = det::sorted_view(m);
  static_assert(std::is_same_v<decltype(view.front()),
                               const std::pair<const int, int>*&>);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.front()->first, 1);
}

TEST(SortedView, StableAcrossInsertionOrders) {
  // The whole point: two histories, one iteration order.
  std::unordered_map<int, int> a;
  std::unordered_map<int, int> b;
  for (int k = 0; k < 100; ++k) a.emplace(k, k);
  for (int k = 99; k >= 0; --k) b.emplace(k, k);

  std::vector<int> ka;
  std::vector<int> kb;
  for (const auto* e : det::sorted_view(a)) ka.push_back(e->first);
  for (const auto* e : det::sorted_view(b)) kb.push_back(e->first);
  EXPECT_EQ(ka, kb);
}

TEST(SortedKeys, WorksForSetsAndMaps) {
  std::unordered_set<int> s{9, 2, 5};
  EXPECT_EQ(det::sorted_keys(s), (std::vector<int>{2, 5, 9}));

  std::unordered_map<int, std::string> m{{4, "d"}, {1, "a"}, {3, "c"}};
  EXPECT_EQ(det::sorted_keys(m), (std::vector<int>{1, 3, 4}));
}

TEST(SortedKeys, EmptyContainer) {
  std::unordered_set<int> s;
  EXPECT_TRUE(det::sorted_keys(s).empty());
  std::unordered_map<int, int> m;
  EXPECT_TRUE(det::sorted_view(m).empty());
}

TEST(OrderedAliases, TreeContainersIterateInKeyOrder) {
  det::map<int, int> m;
  m[3] = 30;
  m[1] = 10;
  m[2] = 20;
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));

  det::set<int> s{5, 1, 3};
  EXPECT_EQ(*s.begin(), 1);
}

}  // namespace
}  // namespace hlsrg
