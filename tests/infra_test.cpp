// Tests for infra: RSU deployment and wiring.
#include <gtest/gtest.h>

#include "grid/hierarchy.h"
#include "infra/rsu_grid.h"
#include "roadnet/map_builder.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

struct Fixture {
  explicit Fixture(double size = 2000)
      : net(build_manhattan_map({.size_m = size})),
        hierarchy(net, build_partition(net)),
        sim(1),
        wired(sim, registry),
        rsus(hierarchy, registry, wired) {}

  RoadNetwork net;
  GridHierarchy hierarchy;
  Simulator sim;
  NodeRegistry registry;
  WiredNetwork wired;
  RsuGrid rsus;
};

TEST(RsuGridTest, CountsMatchHierarchy) {
  Fixture f;
  // 2 km map: 2x2 L2 + 1x1 L3 = 5 RSUs.
  EXPECT_EQ(f.rsus.count(), 5u);
  int l2 = 0, l3 = 0;
  for (const auto& r : f.rsus.all()) {
    (r.level == GridLevel::kL2 ? l2 : l3)++;
  }
  EXPECT_EQ(l2, 4);
  EXPECT_EQ(l3, 1);
}

TEST(RsuGridTest, RsusSitAtGridCenters) {
  Fixture f;
  for (const auto& r : f.rsus.all()) {
    EXPECT_EQ(r.pos, f.hierarchy.center_pos(r.coord, r.level));
    EXPECT_EQ(f.registry.position(r.node), r.pos);
  }
}

TEST(RsuGridTest, LookupByCoordAndNode) {
  Fixture f;
  const RsuId id = f.rsus.rsu_at({1, 0}, GridLevel::kL2);
  EXPECT_TRUE(id.valid());
  const auto& r = f.rsus.rsu(id);
  EXPECT_EQ(r.level, GridLevel::kL2);
  EXPECT_EQ(r.coord, (GridCoord{1, 0}));
  EXPECT_EQ(f.rsus.rsu_of_node(r.node), id);
  // A non-RSU node maps to invalid.
  const NodeId vehicle = f.registry.add_node(Vec2{});
  EXPECT_FALSE(f.rsus.rsu_of_node(vehicle).valid());
}

TEST(RsuGridTest, EveryL2WiredToParentL3) {
  Fixture f;
  for (const auto& r : f.rsus.all()) {
    if (r.level != GridLevel::kL2) continue;
    const GridCoord parent{r.coord.col / 2, r.coord.row / 2};
    const NodeId l3 = f.rsus.node_at(parent, GridLevel::kL3);
    EXPECT_EQ(f.wired.hop_count(r.node, l3), 1);
  }
}

TEST(RsuGridTest, L3MeshOnLargeMap) {
  Fixture f(4000);  // 2x2 L3 grid
  EXPECT_EQ(f.hierarchy.cell_count(GridLevel::kL3), 4);
  const NodeId a = f.rsus.node_at({0, 0}, GridLevel::kL3);
  const NodeId b = f.rsus.node_at({1, 0}, GridLevel::kL3);
  const NodeId c = f.rsus.node_at({1, 1}, GridLevel::kL3);
  EXPECT_EQ(f.wired.hop_count(a, b), 1);  // east neighbor
  EXPECT_EQ(f.wired.hop_count(a, c), 2);  // diagonal: two compass hops
}

TEST(RsuGridTest, WholePlaneIsWiredConnected) {
  Fixture f(4000);
  const NodeId ref = f.rsus.all().front().node;
  for (const auto& r : f.rsus.all()) {
    EXPECT_GE(f.wired.hop_count(ref, r.node), 0)
        << "RSU at (" << r.coord.col << "," << r.coord.row << ") unreachable";
  }
}

TEST(RsuGridTest, NearestRsuMatchesContainingCell) {
  Fixture f;
  const Vec2 p{300, 1700};  // L1 (0,3) -> L2 (0,1)
  const RsuId id = f.rsus.nearest_rsu(p, GridLevel::kL2, f.hierarchy);
  EXPECT_EQ(f.rsus.rsu(id).coord, (GridCoord{0, 1}));
}

TEST(RsuGridTest, SmallMapDegeneratesGracefully) {
  Fixture f(500);  // single L1 == L2 == L3 cell
  EXPECT_EQ(f.rsus.count(), 2u);  // one L2 + one L3
  const NodeId l2 = f.rsus.node_at({0, 0}, GridLevel::kL2);
  const NodeId l3 = f.rsus.node_at({0, 0}, GridLevel::kL3);
  EXPECT_EQ(f.wired.hop_count(l2, l3), 1);
}

}  // namespace
}  // namespace hlsrg
