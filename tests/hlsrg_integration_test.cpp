// Integration tests: the full HLSRG stack on complete worlds, plus paired
// protocol comparisons and ablation switches.
#include <gtest/gtest.h>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "harness/world.h"

namespace hlsrg {
namespace {

TEST(HlsrgIntegrationTest, QueriesSucceedOnPaperScenario) {
  ScenarioConfig cfg = paper_scenario(500, 3);
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_issued, 50u);
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  EXPECT_GT(m.success_rate(), 0.7);
  EXPECT_GT(m.notifications_sent, 0u);
  EXPECT_GT(m.acks_sent, 0u);
}

TEST(HlsrgIntegrationTest, DeterministicPerSeed) {
  ScenarioConfig cfg = paper_scenario(300, 11);
  World a(cfg, Protocol::kHlsrg);
  World b(cfg, Protocol::kHlsrg);
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().update_packets_originated,
            b.metrics().update_packets_originated);
  EXPECT_EQ(a.metrics().queries_succeeded, b.metrics().queries_succeeded);
  EXPECT_EQ(a.metrics().radio_broadcasts, b.metrics().radio_broadcasts);
  EXPECT_EQ(a.metrics().query_latency.mean_ms(),
            b.metrics().query_latency.mean_ms());
}

TEST(HlsrgIntegrationTest, SeedsChangeOutcomes) {
  ScenarioConfig a_cfg = paper_scenario(300, 1);
  ScenarioConfig b_cfg = paper_scenario(300, 2);
  World a(a_cfg, Protocol::kHlsrg);
  World b(b_cfg, Protocol::kHlsrg);
  a.run();
  b.run();
  EXPECT_NE(a.metrics().radio_broadcasts, b.metrics().radio_broadcasts);
}

TEST(HlsrgIntegrationTest, MobilityIsIdenticalAcrossProtocols) {
  // Paired comparison fairness: with the same seed, vehicle trajectories
  // must not depend on which protocol runs on top.
  ScenarioConfig cfg = paper_scenario(100, 17);
  World h(cfg, Protocol::kHlsrg);
  World r(cfg, Protocol::kRlsmp);
  h.run_until(SimTime::from_sec(120));
  r.run_until(SimTime::from_sec(120));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(h.mobility().position(VehicleId{i}),
              r.mobility().position(VehicleId{i}))
        << "vehicle " << i;
  }
}

TEST(HlsrgIntegrationTest, FewerUpdatesThanRlsmp) {
  // The headline claim (Fig 3.2 shape): road-adapted update suppression
  // produces substantially fewer location update packets than RLSMP.
  ScenarioConfig cfg = paper_scenario(500, 7);
  World h(cfg, Protocol::kHlsrg);
  World r(cfg, Protocol::kRlsmp);
  const auto hu = h.run().update_packets_originated;
  const auto ru = r.run().update_packets_originated;
  EXPECT_LT(hu, ru);
  EXPECT_LT(static_cast<double>(hu), 0.9 * static_cast<double>(ru));
}

TEST(HlsrgIntegrationTest, CentersCollectTables) {
  ScenarioConfig cfg = paper_scenario(500, 9);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(90));
  auto& svc = dynamic_cast<HlsrgService&>(world.service());
  int in_center = 0;
  std::size_t entries = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    const auto& agent = svc.vehicle_agent(VehicleId{i});
    if (agent.in_center()) {
      ++in_center;
      entries += agent.table().size();
    }
  }
  EXPECT_GT(in_center, 5);
  EXPECT_GT(entries, 50u);
}

TEST(HlsrgIntegrationTest, RsuTablesThinUpward) {
  ScenarioConfig cfg = paper_scenario(500, 9);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(120));
  auto& svc = dynamic_cast<HlsrgService&>(world.service());
  std::size_t l2_entries = 0, l3_entries = 0;
  for (const auto& rsu : svc.rsu_agents()) {
    if (rsu.level() == GridLevel::kL2) {
      l2_entries += rsu.l2_table().size();
      // The thinned summary table tracks the full cache.
      EXPECT_GE(rsu.l2_table().size() + 5, rsu.full_table().size());
    } else {
      l3_entries += rsu.l3_table().size();
    }
  }
  EXPECT_GT(l2_entries, 0u);
  EXPECT_GT(l3_entries, 0u);
}

TEST(HlsrgIntegrationTest, TablesExpireWithoutTraffic) {
  // After warmup, freeze updates by ending queries: entries older than the
  // expiry vanish from RSU tables on the next purge (exercised via queries).
  ScenarioConfig cfg = paper_scenario(200, 5);
  cfg.hlsrg.l2_expiry = SimTime::from_sec(15);
  cfg.hlsrg.l3_expiry = SimTime::from_sec(15);
  cfg.hlsrg.l1_expiry = SimTime::from_sec(15);
  World world(cfg, Protocol::kHlsrg);
  world.run();
  // With such aggressive expiry the protocol still settles every query.
  EXPECT_EQ(world.metrics().queries_succeeded +
                world.metrics().queries_failed,
            world.metrics().queries_issued);
}

// --- ablations -----------------------------------------------------------------

TEST(HlsrgAblationTest, NoRsusStillRuns) {
  ScenarioConfig cfg = paper_scenario(300, 13);
  cfg.hlsrg.use_rsus = false;
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  EXPECT_EQ(m.wired_messages, 0u);
}

TEST(HlsrgAblationTest, RsusImproveSuccessRate) {
  ScenarioConfig with = paper_scenario(400, 19);
  ScenarioConfig without = paper_scenario(400, 19);
  without.hlsrg.use_rsus = false;
  World a(with, Protocol::kHlsrg);
  World b(without, Protocol::kHlsrg);
  const double sr_with = a.run().success_rate();
  const double sr_without = b.run().success_rate();
  EXPECT_GT(sr_with, sr_without);
}

TEST(HlsrgAblationTest, SuppressionReducesUpdates) {
  ScenarioConfig on = paper_scenario(400, 23);
  ScenarioConfig off = paper_scenario(400, 23);
  off.hlsrg.suppress_artery_updates = false;
  World a(on, Protocol::kHlsrg);
  World b(off, Protocol::kHlsrg);
  const auto u_on = a.run().update_packets_originated;
  const auto u_off = b.run().update_packets_originated;
  EXPECT_LT(u_on, u_off);
}

TEST(HlsrgAblationTest, NaiveModeSendsMostUpdates) {
  ScenarioConfig paper = paper_scenario(400, 29);
  ScenarioConfig naive = paper_scenario(400, 29);
  naive.hlsrg.naive_every_crossing = true;
  World a(paper, Protocol::kHlsrg);
  World b(naive, Protocol::kHlsrg);
  EXPECT_LT(a.run().update_packets_originated,
            b.run().update_packets_originated);
}

// Density sweep mirroring the paper's x-axis.
class HlsrgDensitySweep : public ::testing::TestWithParam<int> {};

TEST_P(HlsrgDensitySweep, ProtocolStaysFunctional) {
  ScenarioConfig cfg = paper_scenario(GetParam(), 31);
  World world(cfg, Protocol::kHlsrg);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  EXPECT_GT(m.success_rate(), 0.5) << GetParam() << " vehicles";
}

INSTANTIATE_TEST_SUITE_P(Densities, HlsrgDensitySweep,
                         ::testing::Values(300, 500, 700));

}  // namespace
}  // namespace hlsrg
