// Tests for util: tagged ids, the flat table, and text formatting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/args.h"
#include "util/flat_table.h"
#include "util/format.h"
#include "util/tagged_id.h"

namespace hlsrg {
namespace {

TEST(TaggedIdTest, DefaultConstructedIsInvalid) {
  VehicleId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), VehicleId::kInvalid);
}

TEST(TaggedIdTest, ExplicitValueIsValid) {
  VehicleId id{std::uint32_t{42}};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), std::size_t{42});
}

TEST(TaggedIdTest, ComparisonIsByValue) {
  VehicleId a{std::uint32_t{1}};
  VehicleId b{std::uint32_t{2}};
  VehicleId c{std::uint32_t{1}};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

TEST(TaggedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<VehicleId, IntersectionId>);
  static_assert(!std::is_convertible_v<VehicleId, IntersectionId>);
  static_assert(!std::is_convertible_v<VehicleId, int>);
}

TEST(TaggedIdTest, HashWorksInUnorderedContainers) {
  std::unordered_set<VehicleId> set;
  set.insert(VehicleId{std::uint32_t{1}});
  set.insert(VehicleId{std::uint32_t{2}});
  set.insert(VehicleId{std::uint32_t{1}});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TaggedIdTest, StreamsValueOrInvalid) {
  std::ostringstream os;
  os << VehicleId{std::uint32_t{5}} << ' ' << VehicleId{};
  EXPECT_EQ(os.str(), "5 <invalid>");
}

// --- FlatTable -------------------------------------------------------------

TEST(FlatTableTest, UpsertInsertsAndOverwrites) {
  FlatTable<VehicleId, int> t;
  EXPECT_TRUE(t.upsert(VehicleId{std::uint32_t{3}}, 30));
  EXPECT_TRUE(t.upsert(VehicleId{std::uint32_t{1}}, 10));
  EXPECT_FALSE(t.upsert(VehicleId{std::uint32_t{3}}, 33));
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(VehicleId{std::uint32_t{3}}), nullptr);
  EXPECT_EQ(*t.find(VehicleId{std::uint32_t{3}}), 33);
}

TEST(FlatTableTest, FindMissingReturnsNull) {
  FlatTable<VehicleId, int> t;
  t.upsert(VehicleId{std::uint32_t{1}}, 1);
  EXPECT_EQ(t.find(VehicleId{std::uint32_t{2}}), nullptr);
}

TEST(FlatTableTest, KeysStaySorted) {
  FlatTable<VehicleId, int> t;
  for (std::uint32_t v : {9u, 3u, 7u, 1u, 5u}) t.upsert(VehicleId{v}, static_cast<int>(v));
  std::uint32_t prev = 0;
  for (const auto& [k, val] : t) {
    EXPECT_GE(k.value(), prev);
    prev = k.value();
  }
}

TEST(FlatTableTest, EraseRemovesOnlyTarget) {
  FlatTable<VehicleId, int> t;
  t.upsert(VehicleId{std::uint32_t{1}}, 1);
  t.upsert(VehicleId{std::uint32_t{2}}, 2);
  EXPECT_TRUE(t.erase(VehicleId{std::uint32_t{1}}));
  EXPECT_FALSE(t.erase(VehicleId{std::uint32_t{1}}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_NE(t.find(VehicleId{std::uint32_t{2}}), nullptr);
}

TEST(FlatTableTest, EraseIfRemovesMatching) {
  FlatTable<VehicleId, int> t;
  for (std::uint32_t v = 0; v < 10; ++v) t.upsert(VehicleId{v}, static_cast<int>(v));
  const std::size_t removed =
      t.erase_if([](VehicleId, int value) { return value % 2 == 0; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(t.size(), 5u);
  for (const auto& [k, v] : t) EXPECT_EQ(v % 2, 1);
}

TEST(FlatTableTest, MutableFindAllowsInPlaceEdit) {
  FlatTable<VehicleId, int> t;
  t.upsert(VehicleId{std::uint32_t{1}}, 1);
  *t.find(VehicleId{std::uint32_t{1}}) = 99;
  EXPECT_EQ(*t.find(VehicleId{std::uint32_t{1}}), 99);
}

// --- TextTable / format ------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.add_row({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line of dashes present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecialCells) {
  TextTable t;
  t.add_row({"a,b", "plain", "say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "\"a,b\",plain,\"say \"\"hi\"\"\"\n");
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FormatTest, FmtPercentHandlesZeroDenominator) {
  EXPECT_EQ(fmt_percent(1, 0), "n/a");
  EXPECT_EQ(fmt_percent(1, 2, 1), "50.0%");
}

// --- ArgParser --------------------------------------------------------------

// argv helper: gtest-owned storage so the char** stays valid for the call.
std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> out;
  for (std::string& a : args) out.push_back(a.data());
  return out;
}

TEST(ArgParserTest, FlagsAndValuesParse) {
  ArgParser p("test");
  bool flag = false;
  int n = 0;
  double x = 0.0;
  std::string s;
  p.add_flag("--flag", "a flag", &flag);
  p.add_int("--n", "N", "an int", &n);
  p.add_double("--x", "X", "a double", &x);
  p.add_string("--s", "S", "a string", &s);
  std::vector<std::string> args = {"prog", "--flag", "--n", "7",
                                   "--x=2.5", "--s", "hi"};
  std::vector<char*> argv = argv_of(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(flag);
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hi");
}

TEST(ArgParserTest, PositionalsFillInDeclarationOrder) {
  ArgParser p("test");
  std::string in, out = "unset";
  int n = 0;
  p.add_positional("IN", "input file", &in);
  p.add_positional_opt("OUT", "output file", &out);
  p.add_int("--n", "N", "an int", &n);
  std::vector<std::string> args = {"prog", "a.svg", "--n", "3", "b.svg"};
  std::vector<char*> argv = argv_of(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(in, "a.svg");
  EXPECT_EQ(out, "b.svg");
  EXPECT_EQ(n, 3);
}

TEST(ArgParserTest, MissingRequiredPositionalFails) {
  ArgParser p("test");
  std::string in;
  p.add_positional("IN", "input file", &in);
  std::vector<std::string> args = {"prog"};
  std::vector<char*> argv = argv_of(args);
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.exit_code(), 2);
}

TEST(ArgParserTest, AbsentOptionalPositionalLeftUntouched) {
  ArgParser p("test");
  std::string out = "default.svg";
  p.add_positional_opt("OUT", "output file", &out);
  std::vector<std::string> args = {"prog"};
  std::vector<char*> argv = argv_of(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(out, "default.svg");
}

TEST(ArgParserTest, ExtraOperandWithNoSlotFails) {
  ArgParser p("test");
  std::string in;
  p.add_positional("IN", "input file", &in);
  std::vector<std::string> args = {"prog", "a.svg", "stray"};
  std::vector<char*> argv = argv_of(args);
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.exit_code(), 2);
}

TEST(ArgParserTest, UnknownFlagSuggestsNearMiss) {
  ArgParser p("test");
  int replicas = 0;
  p.add_int("--replicas", "N", "replicas", &replicas);
  std::vector<std::string> args = {"prog", "--replica", "3"};
  std::vector<char*> argv = argv_of(args);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("did you mean '--replicas'"), std::string::npos) << err;
  EXPECT_EQ(p.exit_code(), 2);
}

TEST(ArgParserTest, WildlyUnrelatedFlagGetsNoSuggestion) {
  ArgParser p("test");
  int replicas = 0;
  p.add_int("--replicas", "N", "replicas", &replicas);
  std::vector<std::string> args = {"prog", "--frobnicate"};
  std::vector<char*> argv = argv_of(args);
  testing::internal::CaptureStderr();
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("did you mean"), std::string::npos) << err;
}

TEST(ArgParserTest, DuplicateRegistrationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ArgParser p("test");
        bool a = false;
        bool b = false;
        p.add_flag("--same", "first", &a);
        p.add_flag("--same", "second", &b);
      },
      "duplicate flag registration");
}

TEST(ArgParserTest, UsageListsPositionalsInSynopsis) {
  ArgParser p("demo");
  std::string in, out;
  p.add_positional("IN", "input", &in);
  p.add_positional_opt("OUT", "output", &out);
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("IN [OUT]"), std::string::npos) << usage;
}

}  // namespace
}  // namespace hlsrg
