// Tests for roadnet: graph construction invariants and the map builders.
#include <gtest/gtest.h>

#include <set>

#include "roadnet/map_builder.h"
#include "roadnet/map_io.h"
#include "roadnet/road_network.h"

namespace hlsrg {
namespace {

RoadNetwork tiny_graph() {
  // a --- b --- c   (one horizontal road)
  RoadNetwork net;
  const auto a = net.add_intersection({0, 0});
  const auto b = net.add_intersection({100, 0});
  const auto c = net.add_intersection({200, 0});
  const RoadId r = net.add_road(RoadClass::kMainArtery,
                                Orientation::kHorizontal, 0.0);
  net.add_edge(r, a, b);
  net.add_edge(r, b, c);
  net.finalize();
  return net;
}

TEST(RoadNetworkTest, EdgesComeInDirectedPairs) {
  const RoadNetwork net = tiny_graph();
  EXPECT_EQ(net.segment_count(), 4u);
  for (std::size_t i = 0; i < net.segment_count(); ++i) {
    const Segment& s = net.segment(SegmentId{i});
    const Segment& r = net.segment(s.reverse);
    EXPECT_EQ(r.from, s.to);
    EXPECT_EQ(r.to, s.from);
    EXPECT_EQ(r.reverse, SegmentId{i});
    EXPECT_DOUBLE_EQ(r.length, s.length);
  }
}

TEST(RoadNetworkTest, SegmentGeometryIsConsistent) {
  const RoadNetwork net = tiny_graph();
  const Segment& s = net.segment(SegmentId{std::size_t{0}});
  EXPECT_DOUBLE_EQ(s.length, 100.0);
  EXPECT_EQ(s.unit_dir, (Vec2{1, 0}));
  EXPECT_EQ(net.point_on(SegmentId{std::size_t{0}}, 40.0), (Vec2{40, 0}));
}

TEST(RoadNetworkTest, OutSegmentsRegistered) {
  const RoadNetwork net = tiny_graph();
  // Middle intersection has two outgoing segments (to a and to c).
  EXPECT_EQ(net.intersection(IntersectionId{std::size_t{1}}).out.size(), 2u);
}

TEST(RoadNetworkTest, NearestIntersection) {
  const RoadNetwork net = tiny_graph();
  EXPECT_EQ(net.nearest_intersection({95, 10}), IntersectionId{std::size_t{1}});
  EXPECT_EQ(net.nearest_intersection({-50, 0}), IntersectionId{std::size_t{0}});
}

TEST(RoadNetworkTest, IntersectionsWithinRadius) {
  const RoadNetwork net = tiny_graph();
  EXPECT_EQ(net.intersections_within({100, 0}, 120).size(), 3u);
  EXPECT_EQ(net.intersections_within({100, 0}, 50).size(), 1u);
}

TEST(RoadNetworkTest, BoundsCoverAllIntersections) {
  const RoadNetwork net = tiny_graph();
  const Aabb b = net.bounds();
  EXPECT_EQ(b.lo, (Vec2{0, 0}));
  EXPECT_EQ(b.hi, (Vec2{200, 0}));
}

TEST(RoadNetworkTest, ConnectivityDetection) {
  RoadNetwork net;
  const auto a = net.add_intersection({0, 0});
  const auto b = net.add_intersection({10, 0});
  net.add_intersection({100, 100});  // isolated
  const RoadId r = net.add_road(RoadClass::kNormal, Orientation::kHorizontal, 0);
  net.add_edge(r, a, b);
  net.finalize();
  EXPECT_FALSE(net.is_connected());
}

TEST(RoadNetworkTest, RoadSpansComputedOnFinalize) {
  const RoadNetwork net = tiny_graph();
  const Road& r = net.road(RoadId{std::size_t{0}});
  EXPECT_DOUBLE_EQ(r.span_lo, 0.0);
  EXPECT_DOUBLE_EQ(r.span_hi, 200.0);
  EXPECT_EQ(r.fwd_segments.size(), 2u);
}

// --- map builder -------------------------------------------------------------

TEST(MapBuilderTest, DefaultMapShape) {
  MapConfig cfg;  // 2000 m, arteries every 500, minors every 250
  const RoadNetwork net = build_manhattan_map(cfg);
  // 9 vertical + 9 horizontal lines -> 81 intersections.
  EXPECT_EQ(net.intersection_count(), 81u);
  EXPECT_EQ(net.road_count(), 18u);
  EXPECT_TRUE(net.is_connected());
}

TEST(MapBuilderTest, ArteryClassificationBySpacing) {
  MapConfig cfg;
  const RoadNetwork net = build_manhattan_map(cfg);
  int arteries = 0, normals = 0;
  for (const Road& r : net.roads()) {
    (r.cls == RoadClass::kMainArtery ? arteries : normals)++;
  }
  // Lines at 0,250,...,2000: multiples of 500 are arteries (5 per axis).
  EXPECT_EQ(arteries, 10);
  EXPECT_EQ(normals, 8);
}

TEST(MapBuilderTest, SpanningRoadsSortedByCoord) {
  MapConfig cfg;
  const RoadNetwork net = build_manhattan_map(cfg);
  const auto spans = net.spanning_roads(Orientation::kVertical);
  EXPECT_EQ(spans.size(), 9u);
  double prev = -1;
  for (RoadId rid : spans) {
    EXPECT_GT(net.road(rid).coord, prev);
    prev = net.road(rid).coord;
  }
}

TEST(MapBuilderTest, SmallMap) {
  MapConfig cfg;
  cfg.size_m = 500;
  const RoadNetwork net = build_manhattan_map(cfg);
  EXPECT_EQ(net.intersection_count(), 9u);  // 3x3 lines
  EXPECT_TRUE(net.is_connected());
}

TEST(MapBuilderTest, IrregularMapStaysConnected) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    MapConfig cfg;
    cfg.irregular = true;
    cfg.seed = seed;
    const RoadNetwork net = build_manhattan_map(cfg);
    EXPECT_TRUE(net.is_connected()) << "seed " << seed;
  }
}

TEST(MapBuilderTest, IrregularMapKeepsArteriesStraight) {
  MapConfig cfg;
  cfg.irregular = true;
  cfg.seed = 3;
  const RoadNetwork net = build_manhattan_map(cfg);
  for (const Road& r : net.roads()) {
    if (r.cls != RoadClass::kMainArtery) continue;
    // Artery coordinates stay on the 500 m lattice (no jitter).
    const double rem = std::fmod(r.coord, 500.0);
    EXPECT_TRUE(rem < 1e-6 || 500.0 - rem < 1e-6) << r.coord;
  }
}

TEST(MapBuilderTest, IrregularDropoutRemovesNormalEdges) {
  MapConfig reg;
  const RoadNetwork regular = build_manhattan_map(reg);
  MapConfig irr;
  irr.irregular = true;
  irr.dropout = 0.3;
  irr.seed = 7;
  const RoadNetwork dropped = build_manhattan_map(irr);
  EXPECT_LT(dropped.segment_count(), regular.segment_count());
}

TEST(MapBuilderTest, IrregularIsDeterministicPerSeed) {
  MapConfig cfg;
  cfg.irregular = true;
  cfg.seed = 11;
  const RoadNetwork a = build_manhattan_map(cfg);
  const RoadNetwork b = build_manhattan_map(cfg);
  ASSERT_EQ(a.intersection_count(), b.intersection_count());
  ASSERT_EQ(a.segment_count(), b.segment_count());
  for (std::size_t i = 0; i < a.intersection_count(); ++i) {
    EXPECT_EQ(a.position(IntersectionId{i}), b.position(IntersectionId{i}));
  }
}

TEST(MapBuilderTest, SvgRenderContainsRoads) {
  MapConfig cfg;
  cfg.size_m = 500;
  const RoadNetwork net = build_manhattan_map(cfg);
  const std::string svg = render_map_svg(net);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

// --- map I/O -----------------------------------------------------------------

TEST(MapIoTest, SaveLoadRoundTrip) {
  MapConfig cfg;
  cfg.size_m = 1000;
  const RoadNetwork original = build_manhattan_map(cfg);
  std::string error;
  const RoadNetwork loaded = load_map(save_map(original), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(loaded.intersection_count(), original.intersection_count());
  ASSERT_EQ(loaded.segment_count(), original.segment_count());
  ASSERT_EQ(loaded.road_count(), original.road_count());
  for (std::size_t i = 0; i < original.intersection_count(); ++i) {
    EXPECT_EQ(loaded.position(IntersectionId{i}),
              original.position(IntersectionId{i}));
  }
  for (std::size_t i = 0; i < original.road_count(); ++i) {
    EXPECT_EQ(loaded.road(RoadId{i}).cls, original.road(RoadId{i}).cls);
    EXPECT_EQ(loaded.road(RoadId{i}).orient, original.road(RoadId{i}).orient);
    EXPECT_DOUBLE_EQ(loaded.road(RoadId{i}).coord,
                     original.road(RoadId{i}).coord);
  }
  EXPECT_TRUE(loaded.is_connected());
  // Saved text of the loaded network is identical (canonical form).
  EXPECT_EQ(save_map(loaded), save_map(original));
}

TEST(MapIoTest, HandWrittenMapParses) {
  const std::string text = R"(# two-block strip
intersection 0 0 0
intersection 1 100 0
intersection 2 200 0
road 0 artery H 0
edge 0 0 1
edge 0 1 2
)";
  std::string error;
  const RoadNetwork net = load_map(text, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(net.intersection_count(), 3u);
  EXPECT_EQ(net.segment_count(), 4u);
  EXPECT_TRUE(net.is_artery(SegmentId{std::size_t{0}}));
}

TEST(MapIoTest, MalformedInputsReportLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  const Case cases[] = {
      {"intersection 0 0\n", "malformed intersection"},
      {"intersection 1 0 0\n", "dense and ordered"},
      {"intersection 0 0 0\nroad 0 bogus H 0\n", "artery|normal"},
      {"intersection 0 0 0\nroad 0 artery X 0\n", "H|V|O"},
      {"intersection 0 0 0\nedge 0 0 0\n", "unknown road"},
      {"intersection 0 0 0\nroad 0 artery H 0\nedge 0 0 0\n",
       "self-loop"},
      {"wat 1 2 3\n", "unknown record"},
      {"# empty\n", "no intersections"},
  };
  for (const Case& c : cases) {
    std::string error;
    const RoadNetwork net = load_map(c.text, &error);
    EXPECT_EQ(net.intersection_count(), 0u) << c.text;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "input: " << c.text << " got error: " << error;
  }
}

TEST(MapIoTest, FileRoundTrip) {
  const RoadNetwork original = build_manhattan_map({.size_m = 500});
  const std::string path = ::testing::TempDir() + "/hlsrg_map_io_test.map";
  std::string error;
  ASSERT_TRUE(save_map_file(original, path, &error)) << error;
  const RoadNetwork loaded = load_map_file(path, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(loaded.segment_count(), original.segment_count());
  EXPECT_EQ(load_map_file("/nonexistent/nowhere.map", &error)
                .intersection_count(),
            0u);
  EXPECT_FALSE(error.empty());
}

// Parameterized sweep: every generated map is connected and artery spacing
// holds across sizes and artery spacings.
struct MapParam {
  double size;
  double artery_spacing;
  double minor_spacing;
};

class MapBuilderSweep : public ::testing::TestWithParam<MapParam> {};

TEST_P(MapBuilderSweep, ConnectedAndClassified) {
  const MapParam p = GetParam();
  MapConfig cfg;
  cfg.size_m = p.size;
  cfg.artery_spacing = p.artery_spacing;
  cfg.minor_spacing = p.minor_spacing;
  const RoadNetwork net = build_manhattan_map(cfg);
  EXPECT_TRUE(net.is_connected());
  for (const Road& r : net.roads()) {
    const double rem = std::fmod(r.coord, p.artery_spacing);
    const bool on_artery_line = rem < 1e-6 || p.artery_spacing - rem < 1e-6;
    EXPECT_EQ(r.cls == RoadClass::kMainArtery, on_artery_line);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MapBuilderSweep,
    ::testing::Values(MapParam{500, 500, 250}, MapParam{1000, 500, 250},
                      MapParam{2000, 500, 250}, MapParam{2000, 1000, 250},
                      MapParam{2000, 500, 125}, MapParam{4000, 500, 250},
                      MapParam{2000, 250, 250}));

}  // namespace
}  // namespace hlsrg
