// Tests for the RLSMP baseline: cell geometry, cluster/LSC mapping, spiral
// order, and an end-to-end service run.
#include <gtest/gtest.h>

#include <set>

#include "harness/world.h"
#include "rlsmp/cell_grid.h"

namespace hlsrg {
namespace {

CellGrid default_grid() {
  // 2 km map, 500 m cells offset by 250 m, 3x3 clusters.
  return CellGrid(Aabb{{0, 0}, {2000, 2000}}, 500.0, 250.0, 3);
}

TEST(CellGridTest, ShapeWithOffset) {
  const CellGrid g = default_grid();
  // (2000 + 250) / 500 -> 5 columns.
  EXPECT_EQ(g.cols(), 5);
  EXPECT_EQ(g.rows(), 5);
  EXPECT_EQ(g.cluster_cols(), 2);
  EXPECT_EQ(g.cluster_rows(), 2);
}

TEST(CellGridTest, CellMappingRespectsOffset) {
  const CellGrid g = default_grid();
  // Cells start at -250: [-250,250) is column 0, [250,750) column 1...
  EXPECT_EQ(g.cell_at({0, 0}), (CellCoord{0, 0}));
  EXPECT_EQ(g.cell_at({251, 0}), (CellCoord{1, 0}));
  EXPECT_EQ(g.cell_at({500, 500}), (CellCoord{1, 1}));
  EXPECT_EQ(g.cell_at({1999, 1999}), (CellCoord{4, 4}));
}

TEST(CellGridTest, ArteriesRunThroughCellInteriors) {
  const CellGrid g = default_grid();
  // The 500 m artery lattice must not coincide with cell boundaries: a point
  // on an artery is strictly inside its cell box.
  for (double artery : {0.0, 500.0, 1000.0, 1500.0, 2000.0}) {
    const Vec2 p{artery, 123.0};
    const Aabb box = g.cell_box(g.cell_at(p));
    EXPECT_GT(p.x - box.lo.x, 100.0) << artery;
    EXPECT_GT(box.hi.x - p.x, 100.0) << artery;
  }
}

TEST(CellGridTest, CenterIsInsideBox) {
  const CellGrid g = default_grid();
  for (int c = 0; c < g.cols(); ++c) {
    for (int r = 0; r < g.rows(); ++r) {
      const CellCoord cc{c, r};
      EXPECT_TRUE(g.cell_box(cc).contains(g.cell_center(cc)));
    }
  }
}

TEST(CellGridTest, ClusterAndLscMapping) {
  const CellGrid g = default_grid();
  EXPECT_EQ(g.cluster_of({0, 0}), (ClusterCoord{0, 0}));
  EXPECT_EQ(g.cluster_of({2, 2}), (ClusterCoord{0, 0}));
  EXPECT_EQ(g.cluster_of({3, 1}), (ClusterCoord{1, 0}));
  // LSC of cluster (0,0) is its central cell (1,1).
  EXPECT_EQ(g.lsc_cell({0, 0}), (CellCoord{1, 1}));
  // Truncated edge cluster (1,1): central index clamps into the lattice.
  const CellCoord lsc = g.lsc_cell({1, 1});
  EXPECT_GE(lsc.col, 0);
  EXPECT_LT(lsc.col, g.cols());
}

TEST(CellGridTest, SpiralVisitsEveryClusterExactlyOnce) {
  const CellGrid g = default_grid();
  for (int c = 0; c < g.cluster_cols(); ++c) {
    for (int r = 0; r < g.cluster_rows(); ++r) {
      const auto order = g.spiral_order({c, r});
      EXPECT_EQ(order.size(),
                static_cast<std::size_t>(g.cluster_cols() * g.cluster_rows()));
      std::set<std::pair<int, int>> seen;
      for (const ClusterCoord& cc : order) {
        EXPECT_TRUE(seen.insert({cc.col, cc.row}).second);
        EXPECT_GE(cc.col, 0);
        EXPECT_LT(cc.col, g.cluster_cols());
        EXPECT_GE(cc.row, 0);
        EXPECT_LT(cc.row, g.cluster_rows());
      }
      EXPECT_EQ(order.front(), (ClusterCoord{c, r}));
    }
  }
}

TEST(CellGridTest, SpiralRingDistanceIsMonotone) {
  // On a larger cluster lattice the spiral must visit rings in order.
  const CellGrid g(Aabb{{0, 0}, {9000, 9000}}, 500.0, 250.0, 3);
  ASSERT_GE(g.cluster_cols(), 5);
  const ClusterCoord origin{3, 3};
  const auto order = g.spiral_order(origin);
  int prev_ring = 0;
  for (const ClusterCoord& c : order) {
    const int ring = std::max(std::abs(c.col - origin.col),
                              std::abs(c.row - origin.row));
    EXPECT_GE(ring, prev_ring);
    prev_ring = ring;
  }
}

// --- end-to-end -----------------------------------------------------------------

TEST(RlsmpServiceTest, EndToEndQueriesSucceed) {
  ScenarioConfig cfg = paper_scenario(400, 21);
  World world(cfg, Protocol::kRlsmp);
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_issued, 40u);
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  // The baseline works, just not as well as HLSRG.
  EXPECT_GT(m.success_rate(), 0.4);
  EXPECT_GT(m.update_packets_originated, 0u);
  EXPECT_EQ(m.wired_messages, 0u);  // infrastructure-free
}

TEST(RlsmpServiceTest, UpdatesScaleWithCellCrossings) {
  // Halving the cell size roughly doubles the crossing rate.
  ScenarioConfig small = paper_scenario(200, 5);
  small.rlsmp.cell_size_m = 250.0;
  small.rlsmp.origin_offset_m = 125.0;
  ScenarioConfig big = paper_scenario(200, 5);

  World ws(small, Protocol::kRlsmp);
  World wb(big, Protocol::kRlsmp);
  const auto updates_small = ws.run().update_packets_originated;
  const auto updates_big = wb.run().update_packets_originated;
  EXPECT_GT(updates_small, updates_big);
}

TEST(RlsmpServiceTest, SpiralBatchingSharesHops) {
  // With batching, many simultaneous cache-miss queries ride shared spiral
  // packets: per-query transmissions fall as query volume rises. Compare a
  // burst of queries against sequential ones on the same world seed.
  ScenarioConfig burst = paper_scenario(300, 45);
  burst.workload = ScenarioConfig::WorkloadKind::kPoisson;
  burst.poisson_rate_per_sec = 3.0;  // dense window: batches form
  World wb(burst, Protocol::kRlsmp);
  const RunMetrics& mb = wb.run();
  ASSERT_GT(mb.queries_issued, 20u);
  const double per_query_burst =
      static_cast<double>(mb.query_transmissions) /
      static_cast<double>(mb.queries_issued);

  ScenarioConfig sparse = paper_scenario(300, 45);
  sparse.workload = ScenarioConfig::WorkloadKind::kPoisson;
  sparse.poisson_rate_per_sec = 0.2;  // one at a time: no batching
  World ws(sparse, Protocol::kRlsmp);
  const RunMetrics& ms = ws.run();
  ASSERT_GT(ms.queries_issued, 2u);
  const double per_query_sparse =
      static_cast<double>(ms.query_transmissions) /
      static_cast<double>(ms.queries_issued);

  EXPECT_LT(per_query_burst, per_query_sparse);
}

TEST(RlsmpServiceTest, DeterministicPerSeed) {
  ScenarioConfig cfg = paper_scenario(200, 33);
  World a(cfg, Protocol::kRlsmp);
  World b(cfg, Protocol::kRlsmp);
  a.run();
  b.run();
  EXPECT_EQ(a.metrics().update_packets_originated,
            b.metrics().update_packets_originated);
  EXPECT_EQ(a.metrics().queries_succeeded, b.metrics().queries_succeeded);
  EXPECT_EQ(a.metrics().query_transmissions, b.metrics().query_transmissions);
}

}  // namespace
}  // namespace hlsrg
