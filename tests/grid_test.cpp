// Tests for grid: the road-adapted partition and the three-level hierarchy.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/hierarchy.h"
#include "grid/partition.h"
#include "roadnet/map_builder.h"
#include "sim/rng.h"

namespace hlsrg {
namespace {

RoadNetwork default_map(double size = 2000) {
  MapConfig cfg;
  cfg.size_m = size;
  return build_manhattan_map(cfg);
}

TEST(PartitionTest, SelectsArteriesAt500mOnDefaultMap) {
  const RoadNetwork net = default_map();
  const Partition p = build_partition(net);
  ASSERT_EQ(p.x_lines.size(), 5u);  // 0, 500, 1000, 1500, 2000
  ASSERT_EQ(p.y_lines.size(), 5u);
  for (std::size_t i = 0; i < p.x_lines.size(); ++i) {
    EXPECT_NEAR(p.x_lines[i].coord, 500.0 * static_cast<double>(i), 1e-9);
    EXPECT_TRUE(p.x_lines[i].is_artery);
    EXPECT_TRUE(p.x_lines[i].road.valid());
  }
  EXPECT_EQ(p.cols(), 4);
  EXPECT_EQ(p.rows(), 4);
}

TEST(PartitionTest, LinesStrictlyIncreasingAndCoverMap) {
  const RoadNetwork net = default_map();
  const Partition p = build_partition(net);
  const Aabb bounds = net.bounds();
  EXPECT_DOUBLE_EQ(p.x_lines.front().coord, bounds.lo.x);
  EXPECT_DOUBLE_EQ(p.x_lines.back().coord, bounds.hi.x);
  for (std::size_t i = 0; i + 1 < p.x_lines.size(); ++i) {
    EXPECT_LT(p.x_lines[i].coord, p.x_lines[i + 1].coord);
  }
}

TEST(PartitionTest, RejectsExcessArteriesWhenSpacingIsTight) {
  // Arteries every 250 m: the partition must skip every other one to keep
  // grids ~500 m.
  MapConfig cfg;
  cfg.size_m = 2000;
  cfg.artery_spacing = 250;
  cfg.minor_spacing = 250;
  const RoadNetwork net = build_manhattan_map(cfg);
  const Partition p = build_partition(net);
  for (std::size_t i = 0; i + 1 < p.x_lines.size(); ++i) {
    const double gap = p.x_lines[i + 1].coord - p.x_lines[i].coord;
    EXPECT_GE(gap, 0.6 * 500.0 - 1e-9);
    EXPECT_LE(gap, 1.4 * 500.0 + 1e-9);
  }
}

TEST(PartitionTest, PromotesNormalRoadsWhenArteriesAreSparse) {
  // Arteries every 1000 m: normal roads must be promoted to keep ~500 m
  // grids.
  MapConfig cfg;
  cfg.size_m = 2000;
  cfg.artery_spacing = 1000;
  cfg.minor_spacing = 250;
  const RoadNetwork net = build_manhattan_map(cfg);
  const Partition p = build_partition(net);
  bool promoted_normal = false;
  for (const BoundaryLine& l : p.x_lines) {
    if (!l.is_artery && l.road.valid()) promoted_normal = true;
  }
  EXPECT_TRUE(promoted_normal);
  for (std::size_t i = 0; i + 1 < p.x_lines.size(); ++i) {
    const double gap = p.x_lines[i + 1].coord - p.x_lines[i].coord;
    EXPECT_LE(gap, 1.4 * 500.0 + 1e-9);
  }
}

TEST(PartitionTest, ArteriesPreferredOverCloserNormalRoads) {
  const RoadNetwork net = default_map();  // arteries AND normals available
  const Partition p = build_partition(net);
  // On the default map every chosen interior line should be an artery.
  for (const BoundaryLine& l : p.x_lines) EXPECT_TRUE(l.is_artery);
  for (const BoundaryLine& l : p.y_lines) EXPECT_TRUE(l.is_artery);
}

TEST(PartitionTest, IsSelectedBoundary) {
  const RoadNetwork net = default_map();
  const Partition p = build_partition(net);
  EXPECT_TRUE(p.is_selected_boundary(p.x_lines[1].road));
  // A normal road is never selected on the default map.
  for (std::size_t i = 0; i < net.road_count(); ++i) {
    const RoadId rid{i};
    if (net.road(rid).cls == RoadClass::kNormal) {
      EXPECT_FALSE(p.is_selected_boundary(rid));
    }
  }
  EXPECT_FALSE(p.is_selected_boundary(RoadId{}));
}

// --- hierarchy -----------------------------------------------------------------

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : net_(default_map()), h_(net_, build_partition(net_)) {}
  RoadNetwork net_;
  GridHierarchy h_;
};

TEST_F(HierarchyTest, LevelShapes) {
  EXPECT_EQ(h_.cols(GridLevel::kL1), 4);
  EXPECT_EQ(h_.rows(GridLevel::kL1), 4);
  EXPECT_EQ(h_.cols(GridLevel::kL2), 2);
  EXPECT_EQ(h_.rows(GridLevel::kL2), 2);
  EXPECT_EQ(h_.cols(GridLevel::kL3), 1);
  EXPECT_EQ(h_.rows(GridLevel::kL3), 1);
  EXPECT_EQ(h_.cell_count(GridLevel::kL1), 16);
}

TEST_F(HierarchyTest, PointMapping) {
  EXPECT_EQ(h_.l1_at({100, 100}), (GridCoord{0, 0}));
  EXPECT_EQ(h_.l1_at({600, 100}), (GridCoord{1, 0}));
  EXPECT_EQ(h_.l1_at({100, 1700}), (GridCoord{0, 3}));
  // Boundary points belong to the cell on the greater side (half-open).
  EXPECT_EQ(h_.l1_at({500, 100}), (GridCoord{1, 0}));
  // Outside clamps.
  EXPECT_EQ(h_.l1_at({-50, -50}), (GridCoord{0, 0}));
  EXPECT_EQ(h_.l1_at({5000, 5000}), (GridCoord{3, 3}));
}

TEST_F(HierarchyTest, ParentContainment) {
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      const GridCoord l1{col, row};
      const GridCoord l2 = GridHierarchy::parent(l1, GridLevel::kL2);
      const GridCoord l3 = GridHierarchy::parent(l1, GridLevel::kL3);
      EXPECT_EQ(l2.col, col / 2);
      EXPECT_EQ(l2.row, row / 2);
      EXPECT_EQ(l3.col, col / 4);
      EXPECT_EQ(l3.row, row / 4);
      // The L1 box must lie inside its parents' boxes.
      const Aabb b1 = h_.cell_box(l1, GridLevel::kL1);
      const Aabb b2 = h_.cell_box(l2, GridLevel::kL2);
      const Aabb b3 = h_.cell_box(l3, GridLevel::kL3);
      EXPECT_TRUE(b2.contains_closed(b1.lo) && b2.contains_closed(b1.hi));
      EXPECT_TRUE(b3.contains_closed(b1.lo) && b3.contains_closed(b1.hi));
    }
  }
}

TEST_F(HierarchyTest, CellBoxesTileTheMap) {
  // Every probe point belongs to exactly the cell whose box contains it.
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.uniform(0.0, 1999.9), rng.uniform(0.0, 1999.9)};
    const GridCoord c = h_.l1_at(p);
    EXPECT_TRUE(h_.cell_box(c, GridLevel::kL1).contains(p))
        << p << " -> (" << c.col << "," << c.row << ")";
  }
}

TEST_F(HierarchyTest, IdRoundTrip) {
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      const GridCoord c{col, row};
      const GridId id = h_.id_of(c, GridLevel::kL1);
      EXPECT_EQ(h_.coord_of(id, GridLevel::kL1), c);
    }
  }
}

TEST_F(HierarchyTest, L1CentersAreIntersectionsNearCellCenter) {
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      const GridCoord c{col, row};
      const Vec2 center = h_.center_pos(c, GridLevel::kL1);
      const Aabb box = h_.cell_box(c, GridLevel::kL1);
      // Default map: nearest intersection to the cell center is the interior
      // normal-road crossing (at most ~177 m from the geometric center).
      EXPECT_LE(distance(center, box.center()), 250.0);
    }
  }
}

TEST_F(HierarchyTest, L2CentersAreSharedCorners) {
  // L2 (0,0) children are L1 (0..1, 0..1); shared corner is (500, 500).
  EXPECT_EQ(h_.center_pos({0, 0}, GridLevel::kL2), (Vec2{500, 500}));
  EXPECT_EQ(h_.center_pos({1, 1}, GridLevel::kL2), (Vec2{1500, 1500}));
}

TEST_F(HierarchyTest, L3CenterIsMapCenter) {
  EXPECT_EQ(h_.center_pos({0, 0}, GridLevel::kL3), (Vec2{1000, 1000}));
}

TEST_F(HierarchyTest, CrossingLevels) {
  // Same cell: no crossing.
  EXPECT_EQ(h_.crossing_level({100, 100}, {200, 100}), 0);
  // L1 boundary at x=250? No: boundaries are 500-lattice. x 400->600 crosses
  // x=500, an L2 boundary... L2 cells are 1000 m, so 400->600 stays in L2
  // (0,0): crossing level 1.
  EXPECT_EQ(h_.crossing_level({400, 100}, {600, 100}), 1);
  // Crossing x=1000 flips the L2 cell but not L3.
  EXPECT_EQ(h_.crossing_level({900, 100}, {1100, 100}), 2);
  // Everything is one L3 on a 2 km map; build a 4 km map for level 3.
  const RoadNetwork big = default_map(4000);
  const GridHierarchy h(big, build_partition(big));
  EXPECT_EQ(h.cols(GridLevel::kL3), 2);
  EXPECT_EQ(h.crossing_level({1900, 100}, {2100, 100}), 3);
}

TEST_F(HierarchyTest, SelectedArteryLookup) {
  const Partition& p = h_.partition();
  EXPECT_TRUE(h_.on_selected_artery(p.x_lines[2].road));
  EXPECT_FALSE(h_.on_selected_artery(RoadId{}));
}

// Parameterized sweep: hierarchy invariants across map shapes and the
// irregular generator.
struct GridParam {
  double size;
  double artery_spacing;
  bool irregular;
  std::uint64_t seed;
};

class GridSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(GridSweep, PartitionAndHierarchyInvariants) {
  const GridParam gp = GetParam();
  MapConfig cfg;
  cfg.size_m = gp.size;
  cfg.artery_spacing = gp.artery_spacing;
  cfg.irregular = gp.irregular;
  cfg.seed = gp.seed;
  const RoadNetwork net = build_manhattan_map(cfg);
  const Partition p = build_partition(net);
  const GridHierarchy h(net, p);

  // Boundary gaps within the configured window.
  PartitionConfig pc;
  for (const auto* lines : {&p.x_lines, &p.y_lines}) {
    for (std::size_t i = 0; i + 1 < lines->size(); ++i) {
      const double gap = (*lines)[i + 1].coord - (*lines)[i].coord;
      EXPECT_GT(gap, 0.0);
      EXPECT_LE(gap, pc.max_frac * pc.target_size + 1e-6);
    }
  }

  // Every random point maps into a valid cell at every level, and parents
  // are consistent.
  Rng rng(gp.seed + 1);
  for (int i = 0; i < 300; ++i) {
    const Vec2 pt{rng.uniform(0.0, gp.size), rng.uniform(0.0, gp.size)};
    const GridCoord c1 = h.l1_at(pt);
    EXPECT_GE(c1.col, 0);
    EXPECT_LT(c1.col, h.cols(GridLevel::kL1));
    EXPECT_GE(c1.row, 0);
    EXPECT_LT(c1.row, h.rows(GridLevel::kL1));
    EXPECT_EQ(h.coord_at(pt, GridLevel::kL2),
              GridHierarchy::parent(c1, GridLevel::kL2));
    EXPECT_EQ(h.coord_at(pt, GridLevel::kL3),
              GridHierarchy::parent(c1, GridLevel::kL3));
  }

  // Centers exist and are real intersections.
  for (GridLevel level : {GridLevel::kL1, GridLevel::kL2, GridLevel::kL3}) {
    for (int col = 0; col < h.cols(level); ++col) {
      for (int row = 0; row < h.rows(level); ++row) {
        const IntersectionId id = h.center({col, row}, level);
        EXPECT_TRUE(id.valid());
        EXPECT_LT(id.index(), net.intersection_count());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Maps, GridSweep,
    ::testing::Values(GridParam{2000, 500, false, 1},
                      GridParam{1000, 500, false, 1},
                      GridParam{500, 500, false, 1},
                      GridParam{4000, 500, false, 1},
                      GridParam{2000, 1000, false, 1},
                      GridParam{2000, 250, false, 1},
                      GridParam{2000, 500, true, 3},
                      GridParam{2000, 500, true, 17},
                      GridParam{4000, 500, true, 23}));

}  // namespace
}  // namespace hlsrg
