// Equivalence and regression tests for the hot-path engine overhaul.
//
// The optimized engine (cached contention density with the saturation
// shortcut, batched query_with_density, slab event queue, shared immutable
// packets) must be behavior-identical to the straightforward reference
// implementations it replaced. These tests pin that equivalence:
//   * full-run state digests, reference density vs cached density, across
//     the paper scenarios, protocols, beacons, and an all-kinds fault plan;
//   * the slab EventQueue against a naive sorted-list model under fuzzed
//     schedule/cancel interleavings, plus its conservation law;
//   * OpenAddressMap against std::unordered_map, including the key that
//     collides with the empty-slot sentinel;
//   * nearest_intersection's ring-walking grid against a brute-force scan;
//   * the stale-neighbor-index regression (position writes mid-timestamp
//     must invalidate the index via the registry's position generation);
//   * channel-ledger closure now that every drop path is accounted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "audit/auditor.h"
#include "harness/digest.h"
#include "harness/scenario.h"
#include "harness/world.h"
#include "net/neighbor_index.h"
#include "net/node_registry.h"
#include "roadnet/map_builder.h"
#include "roadnet/road_network.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "util/flat_table.h"

namespace hlsrg {
namespace {

// ---------------------------------------------------------------------------
// Reference-vs-optimized digest equality.
//
// With the reference seam on, the radio recounts every receiver's density
// exactly (bypassing the 3x3 cell-sum shortcut and the per-node cache).
// The shortcut only fires when the cell-block bound already clears the
// contention-free threshold, where exact and approximate counts produce the
// same loss probability — so every random draw, and therefore the final
// state digest, must match bit for bit.

std::uint64_t digest_of(const ScenarioConfig& cfg, Protocol protocol,
                        bool reference_density) {
  World world(cfg, protocol);
  world.medium().set_reference_density_for_test(reference_density);
  world.run();
  return state_digest(world);
}

void expect_density_shortcut_neutral(const ScenarioConfig& cfg,
                                     Protocol protocol) {
  const std::uint64_t reference = digest_of(cfg, protocol, true);
  const std::uint64_t optimized = digest_of(cfg, protocol, false);
  EXPECT_EQ(reference, optimized)
      << "cached density diverged from the exact recount under "
      << protocol_name(protocol);
}

TEST(DensityEquivalenceTest, HlsrgPaperScenario) {
  expect_density_shortcut_neutral(paper_scenario(300, 42), Protocol::kHlsrg);
}

TEST(DensityEquivalenceTest, HlsrgDenserSweepPoint) {
  // Fig 3.4's densest x-axis point: saturated neighborhoods exercise the
  // exact-count fallback, not just the cell-sum shortcut.
  expect_density_shortcut_neutral(paper_scenario(500, 7), Protocol::kHlsrg);
}

TEST(DensityEquivalenceTest, RlsmpPaperScenario) {
  expect_density_shortcut_neutral(paper_scenario(300, 11), Protocol::kRlsmp);
}

TEST(DensityEquivalenceTest, FloodScenario) {
  // FLOOD rebroadcasts everything, so this is the densest broadcast workload
  // per vehicle; keep the fleet small.
  expect_density_shortcut_neutral(paper_scenario(150, 9), Protocol::kFlood);
}

TEST(DensityEquivalenceTest, WithBeaconsEnabled) {
  ScenarioConfig cfg = paper_scenario(200, 5);
  cfg.beacons.enabled = true;
  expect_density_shortcut_neutral(cfg, Protocol::kHlsrg);
}

TEST(DensityEquivalenceTest, UnderAllFaultKindsPlan) {
  ScenarioConfig cfg = paper_scenario(250, 13);
  FaultPlan plan;
  plan.fault_seed = 99;
  FaultWindow rsu;
  rsu.kind = FaultKind::kRsuCrash;
  rsu.begin = SimTime::from_sec(60);
  rsu.end = SimTime::from_sec(90);
  rsu.level = 3;
  rsu.col = 0;
  rsu.row = 0;
  plan.windows.push_back(rsu);
  FaultWindow cut;
  cut.kind = FaultKind::kLinkCut;
  cut.begin = SimTime::from_sec(65);
  cut.end = SimTime::from_sec(95);
  cut.level = 2;
  cut.col = 1;
  cut.row = 0;
  cut.peer_level = 3;
  cut.peer_col = 0;
  cut.peer_row = 0;
  plan.windows.push_back(cut);
  FaultWindow part;
  part.kind = FaultKind::kPartition;
  part.begin = SimTime::from_sec(70);
  part.end = SimTime::from_sec(100);
  part.has_box = true;
  part.box = Aabb{{0.0, 0.0}, {1000.0, 2000.0}};
  plan.windows.push_back(part);
  FaultWindow loss;
  loss.kind = FaultKind::kRadioLoss;
  loss.begin = SimTime::from_sec(60);
  loss.end = SimTime::from_sec(110);
  loss.has_box = true;
  loss.box = Aabb{{500.0, 500.0}, {1500.0, 1500.0}};
  loss.extra_loss = 0.3;
  plan.windows.push_back(loss);
  FaultWindow gps;
  gps.kind = FaultKind::kGpsNoise;
  gps.begin = SimTime::from_sec(75);
  gps.end = SimTime::from_sec(105);
  gps.sigma_m = 15.0;
  plan.windows.push_back(gps);
  cfg.fault_plan = plan;
  expect_density_shortcut_neutral(cfg, Protocol::kHlsrg);
}

// ---------------------------------------------------------------------------
// Slab event queue: exact cancel semantics, slot reuse, conservation.

TEST(SlabEventQueueTest, CancelReturnsTrueOnlyWhilePending) {
  EventQueue q;
  int fired = 0;
  const EventHandle h =
      q.schedule_at(SimTime::from_sec(1), [&fired] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // already cancelled
  q.run_until(SimTime::from_sec(2));
  EXPECT_EQ(fired, 0);

  const EventHandle h2 =
      q.schedule_at(SimTime::from_sec(3), [&fired] { ++fired; });
  q.run_until(SimTime::from_sec(4));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.cancel(h2));  // already fired
}

TEST(SlabEventQueueTest, StaleHandleCannotCancelSlotReuser) {
  // The freed slot of a dispatched event gets recycled; the old handle's
  // sequence number no longer matches, so cancelling through it must not
  // touch the new occupant (the classic ABA hazard of slab indices).
  EventQueue q;
  int fired = 0;
  const EventHandle stale =
      q.schedule_at(SimTime::from_sec(1), [&fired] { ++fired; });
  q.run_until(SimTime::from_sec(1));
  EXPECT_EQ(fired, 1);
  // With one slot free, this reuses it.
  q.schedule_at(SimTime::from_sec(2), [&fired] { ++fired; });
  EXPECT_FALSE(q.cancel(stale));
  q.run_until(SimTime::from_sec(3));
  EXPECT_EQ(fired, 2);
}

TEST(SlabEventQueueTest, ActionsMayScheduleAndCancelReentrantly) {
  EventQueue q;
  std::vector<int> order;
  EventHandle victim;
  q.schedule_at(SimTime::from_sec(1), [&] {
    order.push_back(1);
    // Nested schedule at the same timestamp runs later this timestamp
    // (FIFO tie-break), nested cancel kills a pending peer.
    q.schedule_at(SimTime::from_sec(1), [&] { order.push_back(2); });
    EXPECT_TRUE(q.cancel(victim));
  });
  victim = q.schedule_at(SimTime::from_sec(1), [&] { order.push_back(99); });
  q.schedule_at(SimTime::from_sec(2), [&] { order.push_back(3); });
  q.run_until(SimTime::from_sec(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SlabEventQueueTest, FuzzAgainstSortedListModel) {
  // Reference model: events as (time, seq) pairs in a plain vector; dispatch
  // order is ascending (time, seq) over the uncancelled ones. The slab queue
  // must dispatch the exact same sequence under random schedule/cancel/run
  // interleavings, including handles that go stale across slot reuse.
  Rng rng(0xfeedbeef);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    struct ModelEvent {
      std::int64_t time_us;
      std::uint64_t seq;
      bool cancelled = false;
      bool dispatched = false;
    };
    std::vector<ModelEvent> model;
    std::vector<EventHandle> handles;
    std::vector<std::uint64_t> real_order;
    std::vector<std::uint64_t> expect_order;
    std::uint64_t next_seq = 1;
    std::int64_t now_us = 0;

    const auto model_run_until = [&](std::int64_t until_us) {
      while (true) {
        ModelEvent* best = nullptr;
        for (ModelEvent& e : model) {
          if (e.cancelled || e.dispatched || e.time_us > until_us) continue;
          if (best == nullptr || e.time_us < best->time_us ||
              (e.time_us == best->time_us && e.seq < best->seq)) {
            best = &e;
          }
        }
        if (best == nullptr) break;
        best->dispatched = true;
        expect_order.push_back(best->seq);
      }
      now_us = until_us;
    };

    for (int op = 0; op < 400; ++op) {
      const std::int64_t roll = rng.uniform_int(0, 9);
      if (roll < 6) {
        const std::int64_t when = now_us + rng.uniform_int(0, 5000);
        const std::uint64_t seq = next_seq++;
        handles.push_back(q.schedule_at(
            SimTime::from_us(when),
            [&real_order, seq] { real_order.push_back(seq); }));
        model.push_back({when, seq});
      } else if (roll < 8 && !handles.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
        const bool ok = q.cancel(handles[pick]);
        ModelEvent& e = model[pick];
        const bool model_ok = !e.cancelled && !e.dispatched;
        EXPECT_EQ(ok, model_ok) << "cancel semantics diverged";
        e.cancelled = e.cancelled || model_ok;
      } else {
        const std::int64_t until = now_us + rng.uniform_int(0, 2000);
        q.run_until(SimTime::from_us(until));
        model_run_until(until);
      }
    }
    q.run_until(SimTime::from_us(now_us + 10000));
    model_run_until(now_us + 10000);
    ASSERT_EQ(real_order, expect_order) << "dispatch order diverged";

    // Conservation law over the whole round.
    EXPECT_EQ(q.events_scheduled(),
              q.events_dispatched() + q.events_cancelled() + q.size());
    EXPECT_TRUE(q.empty());
  }
}

// ---------------------------------------------------------------------------
// OpenAddressMap vs std::unordered_map.

TEST(OpenAddressMapTest, SentinelKeyUsesSideSlot) {
  // ~0 packs cell (-1, -1); PR 5 reserved it as the free-slot marker and
  // parked it in a side slot. The state array made it an ordinary key, but
  // the behavior it pins — every bit pattern usable — must hold forever.
  OpenAddressMap<std::uint64_t, std::uint32_t> map;
  EXPECT_EQ(map.find(~std::uint64_t{0}), nullptr);
  map.find_or_insert(~std::uint64_t{0}, 7) = 9;
  ASSERT_NE(map.find(~std::uint64_t{0}), nullptr);
  EXPECT_EQ(*map.find(~std::uint64_t{0}), 9u);
  EXPECT_EQ(map.size(), 1u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(~std::uint64_t{0}), nullptr);
}

TEST(OpenAddressMapTest, FuzzAgainstUnorderedMap) {
  Rng rng(0xc0ffee);
  OpenAddressMap<std::uint64_t, std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int op = 0; op < 20000; ++op) {
    // Small key space forces collisions; keys near the top of the space hit
    // the sentinel and its probe neighborhood.
    std::uint64_t key = static_cast<std::uint64_t>(rng.uniform_int(0, 63));
    if (rng.chance(0.1)) key = ~std::uint64_t{0} - key % 4;
    const std::int64_t roll = rng.uniform_int(0, 9);
    if (roll < 5) {
      const auto value = static_cast<std::uint32_t>(rng.uniform_int(0, 1000));
      std::uint32_t& slot = map.find_or_insert(key, value);
      auto [it, inserted] = ref.try_emplace(key, value);
      ASSERT_EQ(slot, it->second);
      if (rng.chance(0.5)) {
        slot = value + 1;
        it->second = value + 1;
      }
    } else if (roll < 9) {
      const std::uint32_t* found = map.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end());
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second);
      }
    } else if (rng.chance(0.02)) {
      map.clear();
      ref.clear();
    }
    ASSERT_EQ(map.size(), ref.size());
  }
}

// ---------------------------------------------------------------------------
// Stale-neighbor-index regression (satellite bugfix a).

TEST(StaleIndexRegressionTest, PositionWriteMidTimestampInvalidatesIndex) {
  // A pushed position write alone does not invalidate cached neighbor
  // sets; the mutator must also bump the position generation. The index
  // keys its rebuild on (time, generation): with the bump, a query at the
  // SAME timestamp sees the new position — without it, the seed's bug, the
  // index kept serving the stale snapshot.
  NodeRegistry registry;
  const NodeId mover = registry.add_node(Vec2{100.0, 100.0});
  const NodeId anchor = registry.add_node(Vec2{900.0, 900.0});

  NeighborIndex index(registry, 500.0);
  index.refresh(SimTime::from_sec(10));
  std::vector<NodeId> out;
  index.query(Vec2{900.0, 900.0}, 500.0, anchor, &out);
  EXPECT_TRUE(out.empty()) << "mover should start out of range";

  // Mid-timestamp move into range, as the pose bridge would push it.
  registry.set_position(mover, Vec2{850.0, 900.0});
  registry.bump_position_generation();
  index.refresh(SimTime::from_sec(10));  // same timestamp
  out.clear();
  index.query(Vec2{900.0, 900.0}, 500.0, anchor, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], mover);
}

TEST(StaleIndexRegressionTest, WithoutBumpSameTimestampRefreshIsANoop) {
  // Companion check documenting the cache key: an unannounced write is
  // invisible until either the clock or the generation advances. This is
  // why every position mutator must bump.
  NodeRegistry registry;
  const NodeId mover = registry.add_node(Vec2{100.0, 100.0});
  const NodeId anchor = registry.add_node(Vec2{900.0, 900.0});

  NeighborIndex index(registry, 500.0);
  index.refresh(SimTime::from_sec(10));
  registry.set_position(mover, Vec2{850.0, 900.0});  // no bump
  index.refresh(SimTime::from_sec(10));
  std::vector<NodeId> out;
  index.query(Vec2{900.0, 900.0}, 500.0, anchor, &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// nearest_intersection grid vs brute force.

IntersectionId brute_force_nearest(const RoadNetwork& net, Vec2 p) {
  IntersectionId best;
  double best_d2 = 0.0;
  for (std::size_t i = 0; i < net.intersection_count(); ++i) {
    const IntersectionId id{static_cast<std::uint32_t>(i)};
    const Vec2 d = net.position(id) - p;
    const double d2 = d.x * d.x + d.y * d.y;
    if (!best.valid() || d2 < best_d2) {
      best = id;
      best_d2 = d2;
    }
  }
  return best;
}

void fuzz_nearest(const RoadNetwork& net, std::uint64_t seed) {
  Rng rng(seed);
  const Aabb box = net.bounds();
  for (int i = 0; i < 2000; ++i) {
    // Points across the map plus a margin outside it (queries can originate
    // off-map: GPS noise, box corners).
    const double margin = 600.0;
    const Vec2 p{rng.uniform(box.lo.x - margin, box.hi.x + margin),
                 rng.uniform(box.lo.y - margin, box.hi.y + margin)};
    ASSERT_EQ(net.nearest_intersection(p), brute_force_nearest(net, p))
        << "at (" << p.x << ", " << p.y << ")";
  }
  // Exactly-on-intersection queries (distance 0, tie on the point itself).
  for (int i = 0; i < 200; ++i) {
    const auto idx = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(net.intersection_count()) - 1));
    const Vec2 p = net.position(IntersectionId{idx});
    ASSERT_EQ(net.nearest_intersection(p), brute_force_nearest(net, p));
  }
}

TEST(NearestIntersectionGridTest, MatchesBruteForceOnRegularMap) {
  MapConfig cfg;
  fuzz_nearest(build_manhattan_map(cfg), 21);
}

TEST(NearestIntersectionGridTest, MatchesBruteForceOnIrregularMap) {
  MapConfig cfg;
  cfg.irregular = true;
  cfg.seed = 4;
  fuzz_nearest(build_manhattan_map(cfg), 22);
}

TEST(NearestIntersectionGridTest, MatchesBruteForceOnSmallDenseMap) {
  MapConfig cfg;
  cfg.size_m = 500.0;
  cfg.artery_spacing = 250.0;
  cfg.minor_spacing = 125.0;
  fuzz_nearest(build_manhattan_map(cfg), 23);
}

TEST(NearestIntersectionGridTest, HandBuiltGraphWithEquidistantTie) {
  // Two intersections equidistant from the query: the lowest index wins,
  // which forces the ring walk to keep scanning on exact distance ties.
  RoadNetwork net;
  const IntersectionId a = net.add_intersection(Vec2{0.0, 0.0});
  const IntersectionId b = net.add_intersection(Vec2{100.0, 0.0});
  const IntersectionId c = net.add_intersection(Vec2{50.0, 80.0});
  const RoadId r = net.add_road(RoadClass::kNormal, Orientation::kOther);
  net.add_edge(r, a, b);
  net.add_edge(r, b, c);
  net.finalize();
  EXPECT_EQ(net.nearest_intersection(Vec2{50.0, 0.0}), a);  // tie a/b -> a
  EXPECT_EQ(net.nearest_intersection(Vec2{50.0, 60.0}), c);
}

// ---------------------------------------------------------------------------
// Channel-ledger closure (satellite bugfix b) and engine counters.

TEST(LedgerClosureTest, ConservationHoldsWithBeaconsAndFrames) {
  // Beacons broadcast via broadcast_each and GPSR forwards via
  // unicast_frame — the two paths whose drops the seed never ledgered. With
  // the ledger closed, the tightened conservation auditor (drops must EQUAL
  // the ledger total) stays clean over a full run.
  ScenarioConfig cfg = paper_scenario(150, 3);
  cfg.beacons.enabled = true;
  World world(cfg, Protocol::kHlsrg);
  world.run();
  const AuditReport report = world.audit_now();
  EXPECT_TRUE(report.ok()) << report.to_string();
  const RunMetrics& m = world.metrics();
  EXPECT_EQ(m.radio_drops + m.wired_drops, m.channel.total_dropped());
}

TEST(EngineStatsTest, BroadcastThroughputAndRssAreReported) {
  ScenarioConfig cfg = paper_scenario(100, 2);
  World world(cfg, Protocol::kHlsrg);
  world.run();
  EngineStats s = world.sim().engine_stats();
  EXPECT_GT(s.broadcasts, 0u);
  EXPECT_EQ(s.broadcasts, world.metrics().radio_broadcasts);
  // wall_clock_sec / peak_rss_bytes are the harness's to fill.
  s.wall_clock_sec = 2.0;
  EXPECT_DOUBLE_EQ(s.broadcasts_per_sec(),
                   static_cast<double>(s.broadcasts) / 2.0);
}

TEST(EngineStatsTest, MergeSumsBroadcastsAndMaxesPeaks) {
  EngineStats a;
  a.broadcasts = 10;
  a.peak_rss_bytes = 5000;
  a.wall_clock_sec = 1.0;
  EngineStats b;
  b.broadcasts = 32;
  b.peak_rss_bytes = 4000;
  b.wall_clock_sec = 3.0;
  a.merge(b);
  EXPECT_EQ(a.broadcasts, 42u);
  EXPECT_EQ(a.peak_rss_bytes, 5000u);
  EXPECT_DOUBLE_EQ(a.wall_clock_sec, 4.0);
}

}  // namespace
}  // namespace hlsrg
