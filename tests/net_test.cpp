// Tests for net: registry, neighbor index, radio medium, GPSR, geocast, and
// the wired backhaul.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/neighbor_index.h"
#include "net/node_registry.h"
#include "net/radio.h"
#include "net/wired.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

// Records every packet it receives.
class CaptureSink : public PacketSink {
 public:
  void on_receive(const Packet& packet, NodeId from) override {
    received.push_back({packet, from});
  }
  struct Rx {
    Packet packet;
    NodeId from;
  };
  std::vector<Rx> received;
};

struct TestPayload final : PayloadBase {
  int value = 0;
};

Packet make_test_packet(int value = 7) {
  auto p = std::make_shared<TestPayload>();
  p->value = value;
  Packet pkt;
  pkt.id = PacketId{std::uint32_t{1}};
  pkt.kind = PacketKind::kQueryRequest;
  pkt.payload = p;
  return pkt;
}

// A registry of static nodes with capture sinks.
class StaticNet {
 public:
  explicit StaticNet(Simulator& sim, RadioConfig cfg = {})
      : sim_(&sim) {
    cfg_ = cfg;
  }

  NodeId add(Vec2 pos) {
    sinks_.push_back(std::make_unique<CaptureSink>());
    const NodeId id = registry_.add_node(pos, sinks_.back().get());
    return id;
  }

  RadioMedium& medium() {
    if (!medium_) medium_ = std::make_unique<RadioMedium>(*sim_, registry_, cfg_);
    return *medium_;
  }

  CaptureSink& sink(NodeId id) { return *sinks_[id.index()]; }
  NodeRegistry& registry() { return registry_; }

 private:
  Simulator* sim_;
  RadioConfig cfg_;
  NodeRegistry registry_;
  std::vector<std::unique_ptr<CaptureSink>> sinks_;
  std::unique_ptr<RadioMedium> medium_;
};

RadioConfig lossless() {
  RadioConfig cfg;
  cfg.base_loss = 0.0;
  cfg.distance_loss = 0.0;
  cfg.contention_loss_per_neighbor = 0.0;
  return cfg;
}

// --- NodeRegistry -------------------------------------------------------------

TEST(NodeRegistryTest, PositionsArePushed) {
  NodeRegistry reg;
  const NodeId id = reg.add_node(Vec2{1, 2});
  EXPECT_EQ(reg.position(id), (Vec2{1, 2}));
  reg.set_position(id, Vec2{3, 4});
  EXPECT_EQ(reg.position(id), (Vec2{3, 4}));
}

TEST(NodeRegistryTest, VehicleSoaRows) {
  NodeRegistry reg;
  const NodeId n0 = reg.add_node(Vec2{1, 0});
  const NodeId n1 = reg.add_node(Vec2{2, 0});
  reg.bind_vehicle(VehicleId{0u}, n0);
  reg.bind_vehicle(VehicleId{1u}, n1);
  ASSERT_EQ(reg.vehicle_count(), 2u);
  EXPECT_EQ(reg.vehicle_node(VehicleId{1u}), n1);
  EXPECT_EQ(reg.vehicle_position(VehicleId{1u}), (Vec2{2, 0}));
  // Rows seed at rest / region -1; setters keep them current.
  EXPECT_FALSE(reg.vehicle_parked(VehicleId{0u}));
  EXPECT_EQ(reg.vehicle_region(VehicleId{0u}), -1);
  reg.set_vehicle_parked(VehicleId{0u}, true);
  reg.set_vehicle_velocity(VehicleId{0u}, Vec2{0, 5});
  reg.set_vehicle_region(VehicleId{0u}, 3);
  EXPECT_TRUE(reg.vehicle_parked(VehicleId{0u}));
  EXPECT_EQ(reg.vehicle_velocity(VehicleId{0u}), (Vec2{0, 5}));
  EXPECT_EQ(reg.vehicle_region(VehicleId{0u}), 3);
  // A pose push through the node handle is visible through the vehicle view.
  reg.set_position(n0, Vec2{7, 8});
  EXPECT_EQ(reg.vehicle_position(VehicleId{0u}), (Vec2{7, 8}));
}

TEST(NodeRegistryTest, SinkInstallation) {
  NodeRegistry reg;
  const NodeId id = reg.add_node(Vec2{});
  EXPECT_EQ(reg.sink(id), nullptr);
  CaptureSink sink;
  reg.set_sink(id, &sink);
  EXPECT_EQ(reg.sink(id), &sink);
}

// --- NeighborIndex ------------------------------------------------------------

TEST(NeighborIndexTest, MatchesBruteForce) {
  Simulator sim(5);
  NodeRegistry reg;
  Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
    pts.push_back(p);
    reg.add_node(p);
  }
  NeighborIndex index(reg, 500.0);
  index.refresh(sim.now());
  for (int q = 0; q < 50; ++q) {
    const Vec2 query{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)};
    std::vector<NodeId> got;
    index.query(query, 500.0, NodeId{}, &got);
    std::vector<NodeId> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance(pts[i], query) <= 500.0) want.push_back(NodeId{i});
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
    EXPECT_EQ(index.count_within(query, 500.0, NodeId{}),
              static_cast<int>(want.size()));
  }
}

TEST(NeighborIndexTest, ExcludesRequestedNode) {
  Simulator sim(1);
  NodeRegistry reg;
  const NodeId a = reg.add_node(Vec2{0, 0});
  reg.add_node(Vec2{10, 0});
  NeighborIndex index(reg, 100.0);
  index.refresh(sim.now());
  std::vector<NodeId> out;
  index.query({0, 0}, 100.0, a, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_NE(out[0], a);
}

// --- RadioMedium ------------------------------------------------------------

TEST(RadioTest, LossProbabilityMonotoneInDistance) {
  Simulator sim(1);
  NodeRegistry reg;
  RadioMedium medium(sim, reg, {});
  double prev = -1.0;
  for (double d = 0; d <= 500; d += 50) {
    const double p = medium.loss_probability(d, 0);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(RadioTest, LossProbabilityGrowsWithContention) {
  Simulator sim(1);
  NodeRegistry reg;
  RadioMedium medium(sim, reg, {});
  EXPECT_GT(medium.loss_probability(100, 100),
            medium.loss_probability(100, 0));
}

TEST(RadioTest, BroadcastReachesOnlyNodesInRange) {
  Simulator sim(2);
  StaticNet net(sim, lossless());
  const NodeId sender = net.add({0, 0});
  const NodeId near = net.add({400, 0});
  const NodeId far = net.add({900, 0});
  net.medium().broadcast(sender, make_test_packet());
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(net.sink(near).received.size(), 1u);
  EXPECT_TRUE(net.sink(far).received.empty());
  EXPECT_TRUE(net.sink(sender).received.empty());  // no self-delivery
  EXPECT_EQ(sim.metrics().radio_broadcasts, 1u);
}

TEST(RadioTest, BroadcastCarriesPayloadAndSender) {
  Simulator sim(2);
  StaticNet net(sim, lossless());
  const NodeId sender = net.add({0, 0});
  const NodeId rx = net.add({100, 0});
  net.medium().broadcast(sender, make_test_packet(99));
  sim.run_until(SimTime::from_sec(1));
  ASSERT_EQ(net.sink(rx).received.size(), 1u);
  const auto& r = net.sink(rx).received[0];
  EXPECT_EQ(r.from, sender);
  EXPECT_EQ(payload_as<TestPayload>(r.packet).value, 99);
}

TEST(RadioTest, DeliveryIsDelayed) {
  Simulator sim(2);
  StaticNet net(sim, lossless());
  const NodeId sender = net.add({0, 0});
  const NodeId rx = net.add({100, 0});
  net.medium().broadcast(sender, make_test_packet());
  sim.run_until(SimTime::from_us(1));  // epsilon: nothing delivered yet
  EXPECT_TRUE(net.sink(rx).received.empty());
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(net.sink(rx).received.size(), 1u);
}

TEST(RadioTest, TotalLossDropsEverything) {
  Simulator sim(2);
  RadioConfig cfg;
  cfg.base_loss = 1.0;
  cfg.max_loss = 1.0;
  StaticNet net(sim, cfg);
  const NodeId sender = net.add({0, 0});
  const NodeId rx = net.add({100, 0});
  net.medium().broadcast(sender, make_test_packet());
  sim.run_until(SimTime::from_sec(1));
  EXPECT_TRUE(net.sink(rx).received.empty());
  EXPECT_GT(sim.metrics().radio_drops, 0u);
}

TEST(RadioTest, UnicastDeliversToSink) {
  Simulator sim(3);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({300, 0});
  bool lost = false;
  net.medium().unicast(a, b, make_test_packet(), [&] { lost = true; });
  sim.run_until(SimTime::from_sec(1));
  EXPECT_FALSE(lost);
  EXPECT_EQ(net.sink(b).received.size(), 1u);
}

TEST(RadioTest, UnicastOutOfRangeReportsLost) {
  Simulator sim(3);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({2000, 0});
  bool lost = false;
  net.medium().unicast(a, b, make_test_packet(), [&] { lost = true; });
  sim.run_until(SimTime::from_sec(1));
  EXPECT_TRUE(lost);
  EXPECT_TRUE(net.sink(b).received.empty());
}

TEST(RadioTest, UnicastRetriesOvercomeModerateLoss) {
  // With p_loss ~0.5 per attempt and 2 retries, delivery ~87.5% per frame;
  // across 200 frames expect clearly more deliveries than single-shot.
  Simulator sim(4);
  RadioConfig cfg = lossless();
  cfg.base_loss = 0.5;
  cfg.max_loss = 0.5;
  cfg.unicast_retries = 2;
  StaticNet net(sim, cfg);
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({10, 0});
  int lost = 0;
  for (int i = 0; i < 200; ++i) {
    net.medium().unicast(a, b, make_test_packet(), [&] { ++lost; });
  }
  sim.run_until(SimTime::from_sec(5));
  const int delivered = static_cast<int>(net.sink(b).received.size());
  EXPECT_EQ(delivered + lost, 200);
  EXPECT_NEAR(delivered, 175, 20);  // ~87.5%
}

TEST(RadioTest, UnicastFrameCallsExactlyOneCallback) {
  Simulator sim(5);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({100, 0});
  int delivered = 0, lost = 0;
  for (int i = 0; i < 50; ++i) {
    net.medium().unicast_frame(a, b, PacketKind::kAck, [&] { ++delivered; },
                               [&] { ++lost; });
  }
  sim.run_until(SimTime::from_sec(2));
  EXPECT_EQ(delivered + lost, 50);
  EXPECT_EQ(delivered, 50);  // lossless
  // Frame transport must not touch sinks.
  EXPECT_TRUE(net.sink(b).received.empty());
}

// --- GPSR ----------------------------------------------------------------------

TEST(GpsrTest, DeliversAlongALine) {
  Simulator sim(6);
  StaticNet net(sim, lossless());
  std::vector<NodeId> chain;
  for (int i = 0; i <= 6; ++i) chain.push_back(net.add({i * 400.0, 0}));
  GpsrRouter gpsr(net.medium(), net.registry());
  bool delivered = false;
  std::uint64_t tx = 0;
  gpsr.send(chain.front(), {2400, 0}, chain.back(), make_test_packet(), &tx,
            [&](NodeId at) {
              delivered = true;
              EXPECT_EQ(at, chain.back());
            });
  sim.run_until(SimTime::from_sec(2));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.sink(chain.back()).received.size(), 1u);
  EXPECT_GE(tx, 6u);  // at least one hop per gap
  // Intermediate nodes never consume the packet.
  EXPECT_TRUE(net.sink(chain[3]).received.empty());
}

TEST(GpsrTest, PositionAddressedDeliversWithinRadius) {
  Simulator sim(6);
  StaticNet net(sim, lossless());
  const NodeId src = net.add({0, 0});
  net.add({450, 0});
  const NodeId near_dest = net.add({880, 0});
  GpsrRouter gpsr(net.medium(), net.registry());
  bool delivered = false;
  gpsr.send(src, {900, 0}, std::nullopt, make_test_packet(), nullptr,
            [&](NodeId at) {
              delivered = true;
              EXPECT_EQ(at, near_dest);
            },
            {}, /*delivery_radius=*/50.0);
  sim.run_until(SimTime::from_sec(2));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.sink(near_dest).received.size(), 1u);
}

TEST(GpsrTest, FailsWhenPartitioned) {
  Simulator sim(6);
  StaticNet net(sim, lossless());
  const NodeId src = net.add({0, 0});
  const NodeId dst = net.add({5000, 0});  // unreachable island
  GpsrRouter gpsr(net.medium(), net.registry());
  bool failed = false;
  gpsr.send(src, {5000, 0}, dst, make_test_packet(), nullptr, {},
            [&] { failed = true; });
  sim.run_until(SimTime::from_sec(5));
  EXPECT_TRUE(failed);
  EXPECT_GT(sim.metrics().gpsr_failures, 0u);
}

TEST(GpsrTest, PerimeterModeRoutesAroundAVoid) {
  // A "C" shape: greedy hits a local minimum at the tip and must recover via
  // perimeter mode around the gap.
  Simulator sim(7);
  StaticNet net(sim, lossless());
  //   src --- a --- tip   (gap)   dst
  //            \-- down1 -- down2 --/
  const NodeId src = net.add({0, 0});
  net.add({400, 0});
  net.add({800, 0});           // tip; dst at 2000 is 1200 away (out of range)
  net.add({800, -400});        // detour south
  net.add({1200, -400});
  net.add({1600, -400});
  net.add({1900, -100});
  const NodeId dst = net.add({2000, 0});
  GpsrRouter gpsr(net.medium(), net.registry());
  bool delivered = false;
  gpsr.send(src, {2000, 0}, dst, make_test_packet(), nullptr,
            [&](NodeId) { delivered = true; });
  sim.run_until(SimTime::from_sec(5));
  EXPECT_TRUE(delivered);
}

// --- Geocast ----------------------------------------------------------------------

TEST(GeocastTest, BoxFloodReachesEveryNodeInRegionOnce) {
  Simulator sim(8);
  StaticNet net(sim, lossless());
  std::vector<NodeId> inside;
  for (int i = 0; i < 5; ++i) {
    inside.push_back(net.add({100.0 + 150.0 * i, 100}));
  }
  const NodeId outside = net.add({2000, 2000});
  const NodeId origin = inside[0];
  GeocastService geo(net.medium(), net.registry());
  std::uint64_t tx = 0;
  geo.flood(origin, make_test_packet(),
            GeocastRegion::from_box(Aabb{{0, 0}, {1000, 1000}}), &tx);
  sim.run_until(SimTime::from_sec(2));
  for (std::size_t i = 1; i < inside.size(); ++i) {
    EXPECT_EQ(net.sink(inside[i]).received.size(), 1u) << i;
  }
  EXPECT_TRUE(net.sink(outside).received.empty());
  EXPECT_GE(tx, 1u);
}

TEST(GeocastTest, CorridorFloodStaysInCorridor) {
  Simulator sim(8);
  StaticNet net(sim, lossless());
  const NodeId origin = net.add({0, 0});
  const NodeId on_road1 = net.add({400, 10});
  const NodeId on_road2 = net.add({800, -10});
  const NodeId off_road = net.add({400, 300});
  const NodeId behind = net.add({-400, 0});
  GeocastService geo(net.medium(), net.registry());
  geo.flood(origin, make_test_packet(),
            GeocastRegion::corridor({0, 0}, {1, 0}, 50.0, 1200.0, 100.0));
  sim.run_until(SimTime::from_sec(2));
  EXPECT_EQ(net.sink(on_road1).received.size(), 1u);
  EXPECT_EQ(net.sink(on_road2).received.size(), 1u);
  EXPECT_TRUE(net.sink(off_road).received.empty());
  EXPECT_TRUE(net.sink(behind).received.empty());
}

TEST(GeocastTest, FloodTerminatesUnderLoss) {
  Simulator sim(9);
  RadioConfig cfg;
  cfg.base_loss = 0.3;
  StaticNet net(sim, cfg);
  for (int i = 0; i < 40; ++i) {
    net.add({(i % 8) * 120.0, (i / 8) * 120.0});
  }
  GeocastService geo(net.medium(), net.registry());
  std::uint64_t tx = 0;
  geo.flood(NodeId{std::size_t{0}}, make_test_packet(),
            GeocastRegion::from_box(Aabb{{0, 0}, {1000, 1000}}), &tx);
  sim.run_until(SimTime::from_sec(10));
  EXPECT_TRUE(sim.queue().empty());
  EXPECT_LE(tx, 256u);  // respects the budget
}

// --- Wired -------------------------------------------------------------------------

TEST(WiredTest, DirectLinkDelivery) {
  Simulator sim(10);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({1000, 0});
  WiredNetwork wired(sim, net.registry());
  wired.connect(a, b);
  EXPECT_TRUE(wired.send(a, b, make_test_packet(5)));
  sim.run_until(SimTime::from_sec(1));
  ASSERT_EQ(net.sink(b).received.size(), 1u);
  EXPECT_EQ(payload_as<TestPayload>(net.sink(b).received[0].packet).value, 5);
  EXPECT_EQ(sim.metrics().wired_messages, 1u);
}

TEST(WiredTest, MultiHopRouting) {
  Simulator sim(10);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({1, 0});
  const NodeId c = net.add({2, 0});
  const NodeId d = net.add({3, 0});
  WiredNetwork wired(sim, net.registry());
  wired.connect(a, b);
  wired.connect(b, c);
  wired.connect(c, d);
  EXPECT_EQ(wired.hop_count(a, d), 3);
  std::uint64_t tx = 0;
  EXPECT_TRUE(wired.send(a, d, make_test_packet(), &tx));
  sim.run_until(SimTime::from_sec(1));
  EXPECT_EQ(net.sink(d).received.size(), 1u);
  EXPECT_EQ(tx, 3u);
}

TEST(WiredTest, NoPathReturnsFalse) {
  Simulator sim(10);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({1, 0});
  WiredNetwork wired(sim, net.registry());
  EXPECT_FALSE(wired.send(a, b, make_test_packet()));
  EXPECT_EQ(wired.hop_count(a, b), -1);
  EXPECT_EQ(wired.hop_count(a, a), 0);
}

TEST(WiredTest, ConnectIsIdempotent) {
  Simulator sim(10);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({1, 0});
  WiredNetwork wired(sim, net.registry());
  wired.connect(a, b);
  wired.connect(a, b);
  wired.connect(b, a);
  EXPECT_EQ(wired.links_of(a).size(), 1u);
  EXPECT_EQ(wired.links_of(b).size(), 1u);
}

// --- Beacons -------------------------------------------------------------------

TEST(BeaconTest, NeighborsLearnedWithinOneInterval) {
  Simulator sim(20);
  StaticNet net(sim, lossless());
  const NodeId a = net.add({0, 0});
  const NodeId b = net.add({300, 0});
  net.add({900, 0});  // out of range of a
  BeaconConfig cfg;
  cfg.enabled = true;
  cfg.interval_sec = 1.0;
  cfg.timeout_sec = 3.0;
  BeaconService beacons(net.medium(), net.registry(), cfg);
  sim.run_until(SimTime::from_sec(1.5));
  std::vector<BeaconService::Neighbor> out;
  beacons.neighbors_of(a, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, b);
  EXPECT_EQ(out[0].heard_pos, (Vec2{300, 0}));
  EXPECT_GT(beacons.beacons_sent(), 0u);
}

TEST(BeaconTest, StaleNeighborsExpire) {
  Simulator sim(21);
  NodeRegistry reg;
  Vec2 b_pos{300, 0};
  std::vector<std::unique_ptr<CaptureSink>> sinks;
  const NodeId a = reg.add_node(Vec2{0, 0});
  const NodeId b = reg.add_node(b_pos);
  RadioMedium medium(sim, reg, lossless());
  BeaconConfig cfg;
  cfg.enabled = true;
  cfg.interval_sec = 1.0;
  cfg.timeout_sec = 2.5;
  BeaconService beacons(medium, reg, cfg);
  sim.run_until(SimTime::from_sec(2));
  std::vector<BeaconService::Neighbor> out;
  beacons.neighbors_of(a, &out);
  EXPECT_FALSE(out.empty());
  // b drives out of range; after the timeout its entry must be gone.
  reg.set_position(b, Vec2{5000, 0});
  reg.bump_position_generation();
  sim.run_until(SimTime::from_sec(6));
  out.clear();
  beacons.neighbors_of(a, &out);
  EXPECT_TRUE(out.empty());
  (void)b;
}

TEST(BeaconTest, GpsrRoutesOverBeaconTables) {
  Simulator sim(22);
  StaticNet net(sim, lossless());
  std::vector<NodeId> chain;
  for (int i = 0; i <= 5; ++i) chain.push_back(net.add({i * 400.0, 0}));
  BeaconConfig cfg;
  cfg.enabled = true;
  BeaconService beacons(net.medium(), net.registry(), cfg);
  GpsrRouter gpsr(net.medium(), net.registry());
  gpsr.set_beacons(&beacons);
  // Let one beacon round populate the tables first.
  bool delivered = false;
  sim.run_until(SimTime::from_sec(2));
  sim.schedule_after(SimTime::from_us(1), [&] {
    gpsr.send(chain.front(), {2000, 0}, chain.back(), make_test_packet(),
              nullptr, [&](NodeId) { delivered = true; });
  });
  sim.run_until(SimTime::from_sec(5));
  EXPECT_TRUE(delivered);
}

// Parameterized: GPSR delivery rate on random dense placements is high.
class GpsrDensitySweep : public ::testing::TestWithParam<int> {};

TEST_P(GpsrDensitySweep, DeliversOnConnectedRandomPlacements) {
  Simulator sim(100 + static_cast<std::uint64_t>(GetParam()));
  StaticNet net(sim, lossless());
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = GetParam();
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(net.add(
        {rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)}));
  }
  GpsrRouter gpsr(net.medium(), net.registry());
  int delivered = 0, failed = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const NodeId src = nodes[rng.uniform_u64(static_cast<std::uint64_t>(n))];
    const NodeId dst = nodes[rng.uniform_u64(static_cast<std::uint64_t>(n))];
    gpsr.send(src, net.registry().position(dst), dst, make_test_packet(),
              nullptr, [&](NodeId) { ++delivered; }, [&] { ++failed; });
  }
  sim.run_until(SimTime::from_sec(30));
  EXPECT_EQ(delivered + failed, trials);
  // Dense lossless placements: the vast majority must deliver.
  EXPECT_GE(delivered, trials * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(Density, GpsrDensitySweep,
                         ::testing::Values(150, 300, 600));

}  // namespace
}  // namespace hlsrg
