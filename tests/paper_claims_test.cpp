// The paper's headline claims as paired properties, swept over seeds.
//
// Each test runs both protocols on the *same* world (same map, same
// trajectories, same query pairs — guaranteed by the split RNG streams) and
// asserts the comparison the paper's evaluation is built on. These are the
// repository's regression net: if a change to any substrate flips one of
// these orderings, a figure has silently broken.
#include <gtest/gtest.h>

#include "harness/world.h"

namespace hlsrg {
namespace {

class PaperClaims : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // One paired run per (seed); cached per instantiation for the two claims
  // that share it.
  static RunMetrics run(Protocol protocol, std::uint64_t seed) {
    ScenarioConfig cfg = paper_scenario(500, seed);
    World world(cfg, protocol);
    return world.run();
  }
};

TEST_P(PaperClaims, HlsrgSendsFewerUpdates) {
  const RunMetrics h = run(Protocol::kHlsrg, GetParam());
  const RunMetrics r = run(Protocol::kRlsmp, GetParam());
  EXPECT_LT(h.update_packets_originated, r.update_packets_originated)
      << "seed " << GetParam();
}

TEST_P(PaperClaims, HlsrgAnswersFaster) {
  const RunMetrics h = run(Protocol::kHlsrg, GetParam());
  const RunMetrics r = run(Protocol::kRlsmp, GetParam());
  ASSERT_GT(h.query_latency.count(), 0u);
  ASSERT_GT(r.query_latency.count(), 0u);
  EXPECT_LT(h.query_latency.mean_ms(), r.query_latency.mean_ms())
      << "seed " << GetParam();
}

TEST_P(PaperClaims, HlsrgUsesLessQueryAirtime) {
  const RunMetrics h = run(Protocol::kHlsrg, GetParam());
  const RunMetrics r = run(Protocol::kRlsmp, GetParam());
  EXPECT_LT(h.total_query_overhead(), r.total_query_overhead())
      << "seed " << GetParam();
}

TEST_P(PaperClaims, BothProtocolsSettleEveryQuery) {
  for (Protocol protocol : {Protocol::kHlsrg, Protocol::kRlsmp}) {
    const RunMetrics m = run(protocol, GetParam());
    EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued)
        << protocol_name(protocol) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperClaims,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(PaperClaimsAggregate, SuccessOrderingHoldsPooled) {
  // Success-rate separation is the noisiest claim (Fig 3.4); assert it on a
  // pooled sample rather than per seed.
  RunMetrics h, r;
  for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    ScenarioConfig cfg = paper_scenario(500, seed);
    World wh(cfg, Protocol::kHlsrg);
    World wr(cfg, Protocol::kRlsmp);
    h.merge(wh.run());
    r.merge(wr.run());
  }
  EXPECT_GT(h.success_rate(), r.success_rate());
  EXPECT_GT(h.success_rate(), 0.75);
}

}  // namespace
}  // namespace hlsrg
