// Tests for core: the update-rule engine truth table, location tables with
// expiry, and message plumbing.
#include <gtest/gtest.h>

#include "core/hlsrg_config.h"
#include "core/location_table.h"
#include "core/messages.h"
#include "core/update_rules.h"
#include "grid/hierarchy.h"
#include "mobility/turn_policy.h"
#include "roadnet/map_builder.h"

namespace hlsrg {
namespace {

// Fixture exposing rule evaluation on a concrete map by coordinates.
class UpdateRulesFixture {
 public:
  explicit UpdateRulesFixture(MapConfig map_cfg = {.size_m = 2000},
                              HlsrgConfig cfg = {})
      : net_(build_manhattan_map(map_cfg)),
        hierarchy_(net_, build_partition(net_)),
        policy_(net_, TurnPolicyConfig{}),
        cfg_(cfg),
        rules_(net_, hierarchy_, policy_, cfg_) {}

  // Evaluates a pass through the intersection at `at`, arriving from the
  // direction of `from_pos` and leaving toward `to_pos`.
  UpdateDecision pass(Vec2 from_pos, Vec2 at, Vec2 to_pos) {
    const IntersectionId node = net_.nearest_intersection(at);
    const IntersectionId from = net_.nearest_intersection(from_pos);
    const IntersectionId to = net_.nearest_intersection(to_pos);
    const SegmentId in = find_segment(from, node);
    const SegmentId out = find_segment(node, to);
    EXPECT_TRUE(in.valid()) << "no segment " << from_pos << "->" << at;
    EXPECT_TRUE(out.valid()) << "no segment " << at << "->" << to_pos;
    return rules_.evaluate(node, in, out);
  }

  const RoadNetwork& net() const { return net_; }
  const GridHierarchy& hierarchy() const { return hierarchy_; }

 private:
  SegmentId find_segment(IntersectionId a, IntersectionId b) {
    for (SegmentId sid : net_.intersection(a).out) {
      if (net_.segment(sid).to == b) return sid;
    }
    return {};
  }

  RoadNetwork net_;
  GridHierarchy hierarchy_;
  TurnPolicy policy_;
  HlsrgConfig cfg_;
  UpdateRuleEngine rules_;
};

TEST(UpdateRulesTest, Class1StraightOnArteryDoesNotUpdateAtL1Boundary) {
  UpdateRulesFixture f;
  // Eastbound along the y=500 artery, straight through (500,500): crosses
  // the x=500 boundary (level 1/2) but not an L3 boundary.
  const UpdateDecision d = f.pass({250, 500}, {500, 500}, {750, 500});
  EXPECT_TRUE(d.was_class1);
  EXPECT_TRUE(d.grid_changed);
  EXPECT_GE(d.crossing_level, 1);
  EXPECT_LT(d.crossing_level, 3);
  EXPECT_FALSE(d.send);
}

TEST(UpdateRulesTest, Class1TurnTriggersUpdate) {
  UpdateRulesFixture f;
  // Eastbound on the y=500 artery, turning north onto the x=500 artery.
  const UpdateDecision d = f.pass({250, 500}, {500, 500}, {500, 750});
  EXPECT_TRUE(d.was_class1);
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, Class1TurnOntoNormalRoadAlsoTriggers) {
  UpdateRulesFixture f;
  // Eastbound on y=500 artery, turning north onto the x=250 normal road.
  const UpdateDecision d = f.pass({0, 500}, {250, 500}, {250, 750});
  EXPECT_TRUE(d.was_class1);
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, Class1StraightAcrossL3BoundarySends) {
  UpdateRulesFixture f(MapConfig{.size_m = 4000});
  // 4 km map: L3 cells are 2 km; x=2000 is an L3 boundary. Eastbound on the
  // y=500 artery straight through (2000,500).
  const UpdateDecision d = f.pass({1750, 500}, {2000, 500}, {2250, 500});
  EXPECT_TRUE(d.was_class1);
  EXPECT_EQ(d.crossing_level, 3);
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, Class2StraightAcrossAnyBoundarySends) {
  UpdateRulesFixture f;
  // Eastbound on the y=250 normal road through (500,250): crosses x=500.
  const UpdateDecision d = f.pass({250, 250}, {500, 250}, {750, 250});
  EXPECT_FALSE(d.was_class1);
  EXPECT_TRUE(d.grid_changed);
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, Class2StraightInsideGridStaysQuiet) {
  UpdateRulesFixture f;
  // Eastbound on y=250 through (250,250): stays inside L1 (0,0).
  const UpdateDecision d = f.pass({0, 250}, {250, 250}, {500, 250});
  EXPECT_FALSE(d.was_class1);
  EXPECT_FALSE(d.grid_changed);
  EXPECT_FALSE(d.send);
}

TEST(UpdateRulesTest, Class2TurnOntoSelectedArterySends) {
  UpdateRulesFixture f;
  // Northbound on x=250 normal road, turning east onto the y=500 artery.
  const UpdateDecision d = f.pass({250, 250}, {250, 500}, {500, 500});
  EXPECT_FALSE(d.was_class1);
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, Class2TurnOntoNormalRoadStaysQuiet) {
  UpdateRulesFixture f;
  // Northbound on x=250, turning east onto y=250 (both normal, no boundary).
  const UpdateDecision d = f.pass({250, 0}, {250, 250}, {500, 250});
  EXPECT_FALSE(d.was_class1);
  EXPECT_FALSE(d.send);
}

TEST(UpdateRulesTest, UnselectedArteryIsClass2) {
  // Arteries every 250 m: only every other artery is a boundary; vehicles on
  // unselected arteries follow class-2 rules.
  UpdateRulesFixture f(MapConfig{
      .size_m = 2000, .artery_spacing = 250, .minor_spacing = 250});
  const GridHierarchy& h = f.hierarchy();
  // Find an unselected horizontal artery line.
  double unselected_y = -1;
  for (double y : {250.0, 750.0, 1250.0, 1750.0}) {
    bool selected = false;
    for (const BoundaryLine& l : h.partition().y_lines) {
      if (std::abs(l.coord - y) < 1.0) selected = true;
    }
    if (!selected) {
      unselected_y = y;
      break;
    }
  }
  ASSERT_GT(unselected_y, 0.0);
  // Straight east along the unselected artery through a vertical boundary.
  double boundary_x = h.partition().x_lines[1].coord;
  const UpdateDecision d =
      f.pass({boundary_x - 250, unselected_y}, {boundary_x, unselected_y},
             {boundary_x + 250, unselected_y});
  EXPECT_FALSE(d.was_class1);
  EXPECT_TRUE(d.send);  // class 2 crossing a boundary
}

TEST(UpdateRulesTest, NaiveModeSendsOnEveryGridChange) {
  HlsrgConfig cfg;
  cfg.naive_every_crossing = true;
  UpdateRulesFixture f(MapConfig{.size_m = 2000}, cfg);
  const UpdateDecision artery =
      f.pass({250, 500}, {500, 500}, {750, 500});
  EXPECT_TRUE(artery.send);  // suppressed under paper rules, sent here
  const UpdateDecision inside = f.pass({0, 250}, {250, 250}, {500, 250});
  EXPECT_FALSE(inside.send);  // no grid change, still quiet
}

TEST(UpdateRulesTest, SuppressionOffMakesEveryoneClass2) {
  HlsrgConfig cfg;
  cfg.suppress_artery_updates = false;
  UpdateRulesFixture f(MapConfig{.size_m = 2000}, cfg);
  // Straight on the artery across a boundary now sends (class-2 rule 1).
  const UpdateDecision d = f.pass({250, 500}, {500, 500}, {750, 500});
  EXPECT_TRUE(d.send);
}

TEST(UpdateRulesTest, ProbeOnBoundaryRoadIsStable) {
  UpdateRulesFixture f;
  // Driving along a boundary artery must not register spurious crossings of
  // the road it is driving on.
  const UpdateDecision d = f.pass({500, 250}, {500, 500}, {500, 750});
  // Northbound along x=500: crossing y=500 is a real perpendicular boundary
  // crossing; but col must be stable.
  EXPECT_EQ(d.old_l1.col, d.new_l1.col);
  EXPECT_EQ(d.new_l1.row, d.old_l1.row + 1);
}

// --- location tables -----------------------------------------------------------

L1Record rec(std::uint32_t vid, double t_sec, GridCoord l1 = {0, 0}) {
  L1Record r;
  r.vehicle = VehicleId{vid};
  r.time = SimTime::from_sec(t_sec);
  r.l1 = l1;
  r.pos = {1, 2};
  r.dir = {1, 0};
  return r;
}

TEST(L1TableTest, NewestWins) {
  L1Table t;
  t.record(rec(1, 10.0));
  t.record(rec(1, 5.0));  // older: ignored
  ASSERT_NE(t.find(VehicleId{1u}), nullptr);
  EXPECT_EQ(t.find(VehicleId{1u})->time, SimTime::from_sec(10.0));
  t.record(rec(1, 20.0));  // newer: replaces
  EXPECT_EQ(t.find(VehicleId{1u})->time, SimTime::from_sec(20.0));
  EXPECT_EQ(t.size(), 1u);
}

TEST(L1TableTest, PurgeDropsOnlyExpired) {
  L1Table t;
  t.record(rec(1, 0.0));
  t.record(rec(2, 100.0));
  const std::size_t purged =
      t.purge(SimTime::from_sec(140.0), SimTime::from_min(2.2));
  EXPECT_EQ(purged, 1u);
  EXPECT_EQ(t.find(VehicleId{1u}), nullptr);
  EXPECT_NE(t.find(VehicleId{2u}), nullptr);
}

TEST(L1TableTest, SnapshotAndMergeRoundTrip) {
  L1Table a;
  a.record(rec(1, 1.0));
  a.record(rec(2, 2.0));
  L1Table b;
  b.record(rec(2, 5.0));  // newer than a's
  b.record(rec(3, 3.0));
  a.merge(b.snapshot());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.find(VehicleId{2u})->time, SimTime::from_sec(5.0));
}

TEST(L1TableTest, EraseAndClear) {
  L1Table t;
  t.record(rec(1, 1.0));
  t.record(rec(2, 1.0));
  t.erase(VehicleId{1u});
  EXPECT_EQ(t.size(), 1u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(L2TableTest, SchemaAndExpiry) {
  L2Table t;
  t.record(L2Summary{VehicleId{1u}, SimTime::from_sec(10), {2, 3}});
  t.record(L2Summary{VehicleId{1u}, SimTime::from_sec(4), {9, 9}});  // stale
  ASSERT_NE(t.find(VehicleId{1u}), nullptr);
  EXPECT_EQ(t.find(VehicleId{1u})->l1, (GridCoord{2, 3}));
  t.purge(SimTime::from_sec(200), SimTime::from_min(2.2));
  EXPECT_EQ(t.size(), 0u);
}

TEST(L3TableTest, SchemaAndMerge) {
  L3Table t;
  t.record(L3Summary{VehicleId{1u}, SimTime::from_sec(10), {0, 1}, {0, 0}});
  std::vector<L3Summary> gossip{
      {VehicleId{1u}, SimTime::from_sec(20), {1, 1}, {1, 0}},
      {VehicleId{2u}, SimTime::from_sec(5), {0, 0}, {0, 0}},
  };
  t.merge(gossip);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(VehicleId{1u})->owner_l3, (GridCoord{1, 0}));
  EXPECT_EQ(t.find(VehicleId{1u})->l2, (GridCoord{1, 1}));
}

// --- messages ---------------------------------------------------------------------

TEST(MessagesTest, DedupKeySeparatesAttempts) {
  QueryPayload a;
  a.query_id = 7;
  a.attempt = 1;
  QueryPayload b = a;
  b.attempt = 2;
  EXPECT_NE(a.dedup_key(), b.dedup_key());
  QueryPayload c;
  c.query_id = 8;
  c.attempt = 1;
  EXPECT_NE(a.dedup_key(), c.dedup_key());
  ServerClaimPayload claim;
  claim.query_id = 7;
  claim.attempt = 1;
  EXPECT_EQ(claim.dedup_key(), a.dedup_key());
}

TEST(MessagesTest, PayloadDowncast) {
  auto u = std::make_shared<UpdatePayload>();
  u->record = rec(5, 1.0);
  Packet pkt;
  pkt.kind = PacketKind::kLocationUpdate;
  pkt.payload = u;
  EXPECT_EQ(payload_as<UpdatePayload>(pkt).record.vehicle, VehicleId{5u});
}

}  // namespace
}  // namespace hlsrg
