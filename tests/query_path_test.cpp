// End-to-end query-path test on a handcrafted, lossless world.
//
// Unlike the integration tests (random traffic, statistical assertions),
// this builds a world with vehicles parked at chosen positions so each stage
// of the chain — update capture at a grid center, table push to the L2 RSU,
// query ascent, RSU service, directional notification, ACK — is exercised
// deterministically and can be asserted exactly.
#include <gtest/gtest.h>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "core/vehicle_agent.h"
#include "grid/hierarchy.h"
#include "infra/rsu_grid.h"
#include "mobility/mobility_model.h"
#include "net/geocast.h"
#include "net/gpsr.h"
#include "net/radio.h"
#include "net/wired.h"
#include "roadnet/map_builder.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

RadioConfig lossless_radio() {
  RadioConfig cfg;
  cfg.base_loss = 0.0;
  cfg.distance_loss = 0.0;
  cfg.contention_loss_per_neighbor = 0.0;
  return cfg;
}

// A minimal world: the default 2 km map, a hand-placed set of vehicles, and
// the full HLSRG stack over a lossless radio.
class HandcraftedWorld {
 public:
  HandcraftedWorld()
      : sim_(1),
        net_(build_manhattan_map({})),
        hierarchy_(net_, build_partition(net_)),
        medium_(sim_, registry_, lossless_radio()),
        gpsr_(medium_, registry_),
        geocast_(medium_, registry_),
        wired_(sim_, registry_) {
    MobilityConfig mob_cfg;
    mob_cfg.lights.enabled = false;
    mobility_ = std::make_unique<MobilityModel>(sim_, net_, mob_cfg);
  }

  // Parks a vehicle at `pos` (snapped onto the nearest segment start). Call
  // before finish().
  VehicleId park_at(Vec2 pos) {
    // Find the segment whose start is nearest to pos.
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t i = 0; i < net_.segment_count(); ++i) {
      const double d =
          distance2(net_.position(net_.segment(SegmentId{i}).from), pos);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return mobility_->add_vehicle(SegmentId{best}, 0.0, 0.0);
  }

  // Adds a moving vehicle starting at the start of the segment nearest pos.
  VehicleId drive_from(Vec2 pos, double speed_mps) {
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t i = 0; i < net_.segment_count(); ++i) {
      const double d =
          distance2(net_.position(net_.segment(SegmentId{i}).from), pos);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    return mobility_->add_vehicle(SegmentId{best}, 0.0, speed_mps);
  }

  void finish(HlsrgConfig cfg = {}) {
    rsus_ = std::make_unique<RsuGrid>(hierarchy_, registry_, wired_);
    service_ = std::make_unique<HlsrgService>(
        sim_, net_, hierarchy_, *mobility_, registry_, medium_, gpsr_,
        geocast_, wired_, rsus_.get(), cfg);
    mobility_->start();
  }

  Simulator sim_;
  RoadNetwork net_;
  GridHierarchy hierarchy_;
  NodeRegistry registry_;
  RadioMedium medium_;
  GpsrRouter gpsr_;
  GeocastService geocast_;
  WiredNetwork wired_;
  std::unique_ptr<MobilityModel> mobility_;
  std::unique_ptr<RsuGrid> rsus_;
  std::unique_ptr<HlsrgService> service_;
};

TEST(QueryPathTest, LocalGridQueryServedFromCenterTable) {
  HandcraftedWorld w;
  // Grid (0,0): center intersection at (250,250). Park a server there, the
  // target nearby (normal road), and the source in the same grid.
  const VehicleId server = w.park_at({250, 250});
  const VehicleId target = w.park_at({250, 0});
  const VehicleId source = w.park_at({0, 250});
  w.finish();

  // Ignition updates land within ~5 s; the center server hears them all
  // (lossless, everything within 500 m of (250,250)).
  w.sim_.run_until(SimTime::from_sec(10));
  const auto& server_agent = w.service_->vehicle_agent(server);
  EXPECT_TRUE(server_agent.in_center());
  EXPECT_NE(server_agent.table().find(target), nullptr);

  const auto qid = w.service_->issue_query(source, target);
  w.sim_.run_until(SimTime::from_sec(20));
  EXPECT_TRUE(w.service_->tracker().succeeded(qid));
  // Served locally: at least one notification went out (the grid-center
  // server; the L2 RSU may overhear the relayed request and serve too) and
  // the target ACKed exactly once (duplicates are suppressed).
  EXPECT_GE(w.sim_.metrics().notifications_sent, 1u);
  EXPECT_LE(w.sim_.metrics().notifications_sent, 2u);
  EXPECT_EQ(w.sim_.metrics().acks_sent, 1u);
  // Latency is a handful of radio hops, far under the 5 s retry.
  EXPECT_LT(w.service_->tracker().latency(qid), SimTime::from_sec(1));
}

TEST(QueryPathTest, CrossGridQueryClimbsToRsu) {
  HandcraftedWorld w;
  // Target far from the source: source grid (0,0), target grid (3,3) with a
  // center server at (1750,1750)'s nearest intersection. Relay vehicles make
  // the radio path connected.
  const VehicleId source = w.park_at({250, 250});
  const VehicleId target = w.park_at({1750, 1600});
  w.park_at({1750, 1750});  // server at target's grid center
  // Relay chain roughly along the diagonal so GPSR can route.
  for (double d = 500; d <= 1500; d += 250) {
    w.park_at({d, d - 250});
    w.park_at({d - 250, d});
    w.park_at({d, d});
  }
  w.finish();
  w.sim_.run_until(SimTime::from_sec(10));

  const auto qid = w.service_->issue_query(source, target);
  w.sim_.run_until(SimTime::from_sec(30));
  EXPECT_TRUE(w.service_->tracker().succeeded(qid));
  // The local grid cannot know the target; the query must have used the
  // hierarchy (RSU lookup) to resolve.
  EXPECT_GT(w.sim_.metrics().rsu_lookup_hits, 0u);
}

TEST(QueryPathTest, UnknownTargetFailsCleanly) {
  HandcraftedWorld w;
  const VehicleId source = w.park_at({250, 250});
  w.park_at({250, 250});  // a server so elections happen
  const VehicleId ghost = w.park_at({1900, 1900});  // isolated: no relays
  w.finish(HlsrgConfig{});
  w.sim_.run_until(SimTime::from_sec(8));

  const auto qid = w.service_->issue_query(source, ghost);
  // Both attempts (5 s each) must elapse, then the query settles as failed.
  w.sim_.run_until(SimTime::from_sec(30));
  EXPECT_TRUE(w.service_->tracker().settled(qid));
  // Note: the ghost's ignition update may have been sniffed by an RSU over
  // the lossless radio; success is acceptable only if an ACK actually
  // arrived. Either way the tracker must have settled exactly once.
  EXPECT_EQ(w.sim_.metrics().queries_succeeded +
                w.sim_.metrics().queries_failed,
            1u);
}

TEST(QueryPathTest, DirectionalSearchFindsMovedArteryVehicle) {
  HandcraftedWorld w;
  // Target drives east along the y=500 artery; it updates at ignition near
  // (0,500) and keeps driving straight (class 1: silent). By query time it
  // is far from the recorded position — only the corridor geocast along the
  // recorded direction can find it.
  const VehicleId target = w.drive_from({0, 500}, /*speed=*/10.0);
  const VehicleId source = w.park_at({250, 250});
  w.park_at({250, 250});  // center server for grid (0,0)
  // Vehicles along the artery so the corridor flood can propagate.
  for (double x = 250; x <= 1750; x += 250) w.park_at({x, 500});
  w.finish();

  // Let the target drive ~40 s (≈400 m east of the recorded position).
  w.sim_.run_until(SimTime::from_sec(40));
  const auto qid = w.service_->issue_query(source, target);
  w.sim_.run_until(SimTime::from_sec(80));
  EXPECT_TRUE(w.service_->tracker().succeeded(qid))
      << "directional search should catch a straight-driving artery vehicle";
}

TEST(QueryPathTest, AckCarriesQueryIdBackToSource) {
  HandcraftedWorld w;
  const VehicleId server = w.park_at({250, 250});
  const VehicleId target = w.park_at({450, 250});
  const VehicleId source = w.park_at({50, 250});
  w.finish();
  w.sim_.run_until(SimTime::from_sec(8));

  TraceLog trace;
  w.sim_.set_trace(&trace);
  const auto qid = w.service_->issue_query(source, target);
  w.sim_.run_until(SimTime::from_sec(20));
  ASSERT_TRUE(w.service_->tracker().succeeded(qid));
  const auto story = trace.for_query(qid);
  ASSERT_GE(story.size(), 3u);
  EXPECT_EQ(story.front().kind, TraceEventKind::kQueryIssued);
  bool saw_ack = false;
  for (const TraceEvent& e : story) {
    if (e.kind == TraceEventKind::kAckSent) {
      saw_ack = true;
      EXPECT_EQ(e.subject, target);
      EXPECT_EQ(e.other, source);
    }
  }
  EXPECT_TRUE(saw_ack);
  (void)server;
}

}  // namespace
}  // namespace hlsrg
