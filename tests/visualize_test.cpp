// Tests for the SVG world renderer and for workload/percentile additions
// that the examples rely on.
#include <gtest/gtest.h>

#include "harness/visualize.h"
#include "harness/world.h"
#include "sim/counters.h"

namespace hlsrg {
namespace {

TEST(VisualizeTest, FullWorldRenderContainsAllLayers) {
  ScenarioConfig cfg = paper_scenario(50, 71);
  World world(cfg, Protocol::kHlsrg);
  world.run_until(SimTime::from_sec(5));
  VisualizeOptions options;
  options.draw_vehicles = true;
  const std::string svg = render_world_svg(
      world.network(), world.hierarchy(), world.rsus(), &world.mobility(),
      options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);  // boundaries
  EXPECT_NE(svg.find("#1565c0"), std::string::npos);           // centers
  EXPECT_NE(svg.find("#c62828"), std::string::npos);           // L3 layer
  EXPECT_NE(svg.find("<circle"), std::string::npos);
}

TEST(VisualizeTest, LayersCanBeDisabled) {
  ScenarioConfig cfg = paper_scenario(20, 72);
  World world(cfg, Protocol::kHlsrg);
  VisualizeOptions options;
  options.draw_partition = false;
  options.draw_centers = false;
  options.draw_rsus = false;
  options.draw_vehicles = false;
  const std::string svg = render_world_svg(
      world.network(), world.hierarchy(), world.rsus(), &world.mobility(),
      options);
  EXPECT_EQ(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_EQ(svg.find("#1565c0"), std::string::npos);
}

TEST(VisualizeTest, NullRsusAndMobilityAreSkipped) {
  ScenarioConfig cfg = paper_scenario(20, 73);
  cfg.hlsrg.use_rsus = false;
  World world(cfg, Protocol::kHlsrg);
  VisualizeOptions options;
  options.draw_vehicles = true;  // requested but mobility passed as null
  const std::string svg = render_world_svg(world.network(), world.hierarchy(),
                                           nullptr, nullptr, options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

// --- percentiles -------------------------------------------------------------

TEST(PercentileTest, ExactNearestRank) {
  LatencyStat s;
  for (int ms : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    s.add(SimTime::from_ms(ms));
  }
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.p50_ms(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.p99_ms(), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile_ms(1.0), 100.0);
}

TEST(PercentileTest, UnorderedInsertionStillSorted) {
  LatencyStat s;
  for (int ms : {90, 10, 50, 70, 30}) s.add(SimTime::from_ms(ms));
  EXPECT_DOUBLE_EQ(s.p50_ms(), 50.0);
}

TEST(PercentileTest, EmptyIsZero) {
  LatencyStat s;
  EXPECT_DOUBLE_EQ(s.p95_ms(), 0.0);
}

TEST(PercentileTest, MergePoolsPercentiles) {
  LatencyStat a, b;
  a.add(SimTime::from_ms(10));
  a.add(SimTime::from_ms(20));
  b.add(SimTime::from_ms(30));
  b.add(SimTime::from_ms(40));
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.p50_ms(), 20.0);
  EXPECT_DOUBLE_EQ(a.percentile_ms(1.0), 40.0);
}

// --- workloads ------------------------------------------------------------------

TEST(WorkloadTest, PoissonIssuesArrivals) {
  ScenarioConfig cfg = paper_scenario(100, 74);
  cfg.workload = ScenarioConfig::WorkloadKind::kPoisson;
  cfg.poisson_rate_per_sec = 2.0;
  World world(cfg, Protocol::kHlsrg);
  // ~2/s over a 30 s window: expect a few dozen arrivals.
  EXPECT_GT(world.planned_queries(), 25);
  EXPECT_LT(world.planned_queries(), 120);
  world.run();
  EXPECT_EQ(world.metrics().queries_issued,
            static_cast<std::uint64_t>(world.planned_queries()));
}

TEST(WorkloadTest, HotspotTargetsOnlyHotVehicles) {
  ScenarioConfig cfg = paper_scenario(100, 75);
  cfg.workload = ScenarioConfig::WorkloadKind::kHotspot;
  cfg.hotspot_targets = 3;
  cfg.poisson_rate_per_sec = 1.5;
  World world(cfg, Protocol::kHlsrg);
  TraceLog trace;
  world.attach_trace(&trace);
  world.run();
  for (const TraceEvent& e : trace.events()) {
    if (e.kind != TraceEventKind::kQueryIssued) continue;
    EXPECT_LT(e.other.value(), 3u);
  }
}

TEST(WorkloadTest, WorkloadsAreDeterministicPerSeed) {
  ScenarioConfig cfg = paper_scenario(100, 76);
  cfg.workload = ScenarioConfig::WorkloadKind::kPoisson;
  World a(cfg, Protocol::kHlsrg);
  World b(cfg, Protocol::kHlsrg);
  EXPECT_EQ(a.planned_queries(), b.planned_queries());
}

}  // namespace
}  // namespace hlsrg
