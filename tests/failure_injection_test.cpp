// Failure injection: what happens when pieces of the system go dark mid-run.
//
// Outages are modelled by silencing a node's PacketSink — the node still
// occupies space (radio propagation is unaffected) but consumes nothing,
// which is what a powered-off RSU or crashed agent looks like to everyone
// else.
#include <gtest/gtest.h>

#include "core/hlsrg_service.h"
#include "core/rsu_agent.h"
#include "harness/world.h"
#include "infra/rsu_grid.h"

namespace hlsrg {
namespace {

// Silences every RSU at `level` after `at`.
void schedule_rsu_outage(World& world, GridLevel level, SimTime at) {
  world.sim().schedule_at(at, [&world, level] {
    for (const RsuGrid::Rsu& r : world.rsus()->all()) {
      if (r.level == level) world.registry().set_sink(r.node, nullptr);
    }
  });
}

TEST(FailureInjectionTest, L3OutageDegradesButDoesNotZeroSuccess) {
  ScenarioConfig cfg = paper_scenario(500, 91);
  World healthy(cfg, Protocol::kHlsrg);
  World degraded(cfg, Protocol::kHlsrg);
  schedule_rsu_outage(degraded, GridLevel::kL3, SimTime::from_sec(30));

  const double healthy_sr = healthy.run().success_rate();
  const double degraded_sr = degraded.run().success_rate();

  // The L3 fallback path is gone, so success drops...
  EXPECT_LT(degraded_sr, healthy_sr);
  // ...but L1 centers and L2 RSUs still answer a meaningful share.
  EXPECT_GT(degraded_sr, 0.15);
  // The run must still settle every query (no hangs on dead timers).
  EXPECT_EQ(degraded.metrics().queries_succeeded +
                degraded.metrics().queries_failed,
            degraded.metrics().queries_issued);
}

TEST(FailureInjectionTest, TotalRsuOutageFallsBackToL1Centers) {
  ScenarioConfig cfg = paper_scenario(500, 92);
  World world(cfg, Protocol::kHlsrg);
  schedule_rsu_outage(world, GridLevel::kL2, SimTime::from_sec(20));
  schedule_rsu_outage(world, GridLevel::kL3, SimTime::from_sec(20));
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
  // Same-grid queries can still be served from the center tables.
  EXPECT_GT(m.queries_succeeded, 0u);
}

TEST(FailureInjectionTest, OutageAfterWarmupIsWorseThanOutageBeforeQueries) {
  // An L3 RSU that dies before tables are populated removes both collection
  // and service; one that dies after warmup leaves L2 tables warm. Either
  // way the system must not wedge.
  ScenarioConfig cfg = paper_scenario(400, 93);
  World early(cfg, Protocol::kHlsrg);
  schedule_rsu_outage(early, GridLevel::kL3, SimTime::from_sec(1));
  World late(cfg, Protocol::kHlsrg);
  schedule_rsu_outage(late, GridLevel::kL3, SimTime::from_sec(55));
  const RunMetrics& me = early.run();
  const RunMetrics& ml = late.run();
  EXPECT_EQ(me.queries_succeeded + me.queries_failed, me.queries_issued);
  EXPECT_EQ(ml.queries_succeeded + ml.queries_failed, ml.queries_issued);
}

TEST(FailureInjectionTest, DeadVehiclesAreJustSilence) {
  // Silencing a third of the fleet (crashed OBUs) must not break anyone
  // else's bookkeeping; success drops because relays and servers are gone.
  ScenarioConfig cfg = paper_scenario(450, 94);
  World world(cfg, Protocol::kHlsrg);
  world.sim().schedule_at(SimTime::from_sec(30), [&world] {
    auto& svc = dynamic_cast<HlsrgService&>(world.service());
    for (std::uint32_t i = 0; i < 150; ++i) {
      world.registry().set_sink(svc.node_of(VehicleId{i * 3}), nullptr);
    }
  });
  const RunMetrics& m = world.run();
  EXPECT_EQ(m.queries_succeeded + m.queries_failed, m.queries_issued);
}

}  // namespace
}  // namespace hlsrg
