// Tests for the fault-injection subsystem: wired up/down state and ledger
// accounting, BFS-cache invalidation, FaultPlan JSON round trips,
// retry-backoff math, radio degradation zones (beacon expiry across a fault
// window), and World-level RSU crash/reboot with availability accounting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/hlsrg_config.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "harness/digest.h"
#include "harness/world.h"
#include "net/beacons.h"
#include "net/radio.h"
#include "net/wired.h"
#include "report/json.h"
#include "sim/simulator.h"

namespace hlsrg {
namespace {

class NullSink : public PacketSink {
 public:
  void on_receive(const Packet&, NodeId) override { ++received; }
  int received = 0;
};

struct TestPayload final : PayloadBase {};

Packet make_test_packet() {
  Packet pkt;
  pkt.id = PacketId{std::uint32_t{1}};
  pkt.kind = PacketKind::kQueryRequest;
  pkt.payload = std::make_shared<TestPayload>();
  return pkt;
}

// Four statically-placed wired nodes: a - b - c - d chain.
struct WiredChain {
  explicit WiredChain(Simulator& sim) : wired(sim, registry) {
    for (int i = 0; i < 4; ++i) {
      sinks.push_back(std::make_unique<NullSink>());
      const double x = 100.0 * i;
      nodes.push_back(registry.add_node(Vec2{x, 0.0},
                                        sinks.back().get()));
    }
    wired.connect(nodes[0], nodes[1]);
    wired.connect(nodes[1], nodes[2]);
    wired.connect(nodes[2], nodes[3]);
  }
  NodeRegistry registry;
  std::vector<std::unique_ptr<NullSink>> sinks;
  std::vector<NodeId> nodes;
  WiredNetwork wired;
};

// --- wired fault state ------------------------------------------------------

TEST(WiredFaultTest, UnreachableSendIsLedgerAccounted) {
  Simulator sim(1);
  NodeRegistry registry;
  NullSink sink;
  const NodeId a = registry.add_node(Vec2{0, 0}, &sink);
  const NodeId b = registry.add_node(Vec2{100, 0}, &sink);
  WiredNetwork wired(sim, registry);  // no links at all
  std::uint64_t tx = 0;
  EXPECT_FALSE(wired.send(a, b, make_test_packet(), &tx));
  EXPECT_EQ(tx, 0u);  // nothing traversed a link
  const RunMetrics& m = sim.metrics();
  EXPECT_EQ(m.wired_drops, 1u);
  const int kind = static_cast<int>(PacketKind::kQueryRequest);
  EXPECT_EQ(m.channel.offered(kind), 1u);
  EXPECT_EQ(m.channel.dropped(kind), 1u);
  EXPECT_EQ(m.channel.delivered(kind), 0u);
  EXPECT_EQ(sim.observability().counter("wired.unreachable"), 1u);
}

TEST(WiredFaultTest, DownNodeBlocksRoutingAndRecovers) {
  Simulator sim(2);
  WiredChain chain(sim);
  const auto& n = chain.nodes;
  EXPECT_EQ(chain.wired.hop_count(n[0], n[3]), 3);

  chain.wired.set_node_up(n[1], false);
  EXPECT_FALSE(chain.wired.node_up(n[1]));
  EXPECT_EQ(chain.wired.hop_count(n[0], n[3]), -1);
  EXPECT_EQ(chain.wired.hop_count(n[0], n[1]), -1);  // down endpoint
  EXPECT_FALSE(chain.wired.send(n[0], n[3], make_test_packet()));
  EXPECT_EQ(sim.metrics().wired_drops, 1u);

  chain.wired.set_node_up(n[1], true);
  EXPECT_EQ(chain.wired.hop_count(n[0], n[3]), 3);
  EXPECT_TRUE(chain.wired.send(n[0], n[3], make_test_packet()));
}

TEST(WiredFaultTest, DownLinkBlocksRoutingAndRecovers) {
  Simulator sim(3);
  WiredChain chain(sim);
  const auto& n = chain.nodes;
  chain.wired.set_link_up(n[1], n[2], false);
  EXPECT_FALSE(chain.wired.link_up(n[2], n[1]));  // symmetric
  EXPECT_EQ(chain.wired.hop_count(n[0], n[3]), -1);
  EXPECT_EQ(chain.wired.hop_count(n[0], n[1]), 1);  // near side still routes
  chain.wired.set_link_up(n[2], n[1], true);
  EXPECT_EQ(chain.wired.hop_count(n[0], n[3]), 3);
}

TEST(WiredFaultTest, HopCountCacheInvalidatesOnTopologyChange) {
  Simulator sim(4);
  NodeRegistry registry;
  NullSink sink;
  std::vector<NodeId> n;
  for (int i = 0; i < 3; ++i) {
    const double x = 100.0 * i;
    n.push_back(registry.add_node(Vec2{x, 0.0}, &sink));
  }
  WiredNetwork wired(sim, registry);
  wired.connect(n[0], n[1]);
  EXPECT_EQ(wired.hop_count(n[0], n[2]), -1);  // caches the BFS from n[0]
  wired.connect(n[1], n[2]);                   // must invalidate that cache
  EXPECT_EQ(wired.hop_count(n[0], n[2]), 2);
  wired.set_link_up(n[0], n[1], false);
  EXPECT_EQ(wired.hop_count(n[0], n[2]), -1);
}

TEST(WiredFaultTest, LinksEnumeratesEachLinkOnceSorted) {
  Simulator sim(5);
  WiredChain chain(sim);
  const auto links = chain.wired.links();
  ASSERT_EQ(links.size(), 3u);
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_LT(links[i].first.value(), links[i].second.value());
    if (i > 0) {
      EXPECT_LT(links[i - 1].first.value(), links[i].first.value() + 1);
    }
  }
}

// --- FaultPlan model --------------------------------------------------------

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.fault_seed = 99;
  plan.overrides.max_attempts = 4;
  plan.overrides.retry_backoff_base = 2.0;
  FaultWindow crash;
  crash.kind = FaultKind::kRsuCrash;
  crash.begin = SimTime::from_sec(55.0);
  crash.end = SimTime::from_sec(85.0);
  crash.level = 3;
  crash.col = 0;
  crash.row = 0;
  plan.windows.push_back(crash);
  FaultWindow cut;
  cut.kind = FaultKind::kLinkCut;
  cut.begin = SimTime::from_sec(10.0);
  cut.level = 2;
  cut.col = 1;
  cut.row = 0;
  cut.peer_level = 3;
  cut.peer_col = 0;
  cut.peer_row = 0;
  plan.windows.push_back(cut);
  FaultWindow part;
  part.kind = FaultKind::kPartition;
  part.begin = SimTime::from_sec(20.0);
  part.end = SimTime::from_sec(50.0);
  part.has_box = true;
  part.box = Aabb{{0.0, 0.0}, {1000.0, 2000.0}};
  plan.windows.push_back(part);
  FaultWindow loss;
  loss.kind = FaultKind::kRadioLoss;
  loss.begin = SimTime::from_sec(30.0);
  loss.end = SimTime::from_sec(60.0);
  loss.has_box = true;
  loss.box = Aabb{{500.0, 500.0}, {1500.0, 1500.0}};
  loss.extra_loss = 0.4;
  plan.windows.push_back(loss);
  FaultWindow gps;
  gps.kind = FaultKind::kGpsNoise;
  gps.begin = SimTime::from_sec(30.0);
  gps.end = SimTime::from_sec(60.0);
  gps.sigma_m = 25.0;
  plan.windows.push_back(gps);
  return plan;
}

TEST(FaultPlanTest, JsonRoundTripPreservesEverything) {
  const FaultPlan plan = sample_plan();
  FaultPlan back;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(plan.to_json(), &back, &error)) << error;
  EXPECT_EQ(back.fault_seed, 99u);
  ASSERT_EQ(back.windows.size(), 5u);
  EXPECT_EQ(back.windows[0].kind, FaultKind::kRsuCrash);
  EXPECT_EQ(back.windows[1].kind, FaultKind::kLinkCut);
  EXPECT_TRUE(back.windows[1].open_ended());
  EXPECT_EQ(back.windows[2].kind, FaultKind::kPartition);
  EXPECT_TRUE(back.windows[2].has_box);
  EXPECT_DOUBLE_EQ(back.windows[3].extra_loss, 0.4);
  EXPECT_DOUBLE_EQ(back.windows[4].sigma_m, 25.0);
  ASSERT_TRUE(back.overrides.max_attempts.has_value());
  EXPECT_EQ(*back.overrides.max_attempts, 4);
  // The digest is a pure function of the schedule, so a round trip keeps it.
  EXPECT_EQ(back.digest(), plan.digest());
  EXPECT_NE(plan.digest(), 0u);
}

TEST(FaultPlanTest, ChurnWindowRoundTripsAndValidates) {
  FaultPlan plan;
  FaultWindow burst;
  burst.kind = FaultKind::kChurn;
  burst.begin = SimTime::from_sec(70.0);
  burst.end = SimTime::from_sec(90.0);
  burst.has_box = true;
  burst.box = Aabb{{0.0, 0.0}, {1000.0, 2000.0}};
  burst.depart_fraction = 0.5;
  plan.windows.push_back(burst);

  FaultPlan back;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(plan.to_json(), &back, &error)) << error;
  ASSERT_EQ(back.windows.size(), 1u);
  EXPECT_EQ(back.windows[0].kind, FaultKind::kChurn);
  EXPECT_TRUE(back.windows[0].has_box);
  EXPECT_DOUBLE_EQ(back.windows[0].depart_fraction, 0.5);
  EXPECT_EQ(back.digest(), plan.digest());
  EXPECT_NE(plan.digest(), 0u);
  // The fraction joins the digest: a different burst is a different plan.
  FaultPlan other = plan;
  other.windows[0].depart_fraction = 0.25;
  EXPECT_NE(other.digest(), plan.digest());

  // depart_fraction outside (0, 1] is rejected, as is omitting it.
  const auto too_big = JsonValue::parse(
      R"({"schema":"hlsrg-fault/v1","faults":[
            {"kind":"churn","begin_sec":1,"end_sec":2,"depart_fraction":1.5}]})");
  ASSERT_TRUE(too_big.has_value());
  EXPECT_FALSE(FaultPlan::from_json(*too_big, &back, &error));
  EXPECT_NE(error.find("depart_fraction"), std::string::npos) << error;
  const auto missing = JsonValue::parse(
      R"({"schema":"hlsrg-fault/v1","faults":[
            {"kind":"churn","begin_sec":1,"end_sec":2}]})");
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(FaultPlan::from_json(*missing, &back, &error));
}

TEST(FaultPlanTest, EmptyPlanDigestsToZero) {
  EXPECT_EQ(FaultPlan{}.digest(), 0u);
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_FALSE(sample_plan().empty());
}

TEST(FaultPlanTest, RejectsUnknownKindAndBadShapes) {
  FaultPlan out;
  std::string error;
  const auto unknown = JsonValue::parse(
      R"({"schema":"hlsrg-fault/v1","faults":[
            {"kind":"meteor_strike","begin_sec":1,"end_sec":2}]})");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(FaultPlan::from_json(*unknown, &out, &error));
  EXPECT_NE(error.find("meteor_strike"), std::string::npos);

  // radio_loss without a box.
  const auto parsed = JsonValue::parse(
      R"({"schema":"hlsrg-fault/v1","faults":[
            {"kind":"radio_loss","begin_sec":1,"end_sec":2,"extra_loss":0.5}]})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(FaultPlan::from_json(*parsed, &out, &error));

  // max_attempts out of range.
  const auto bad_attempts = JsonValue::parse(
      R"({"schema":"hlsrg-fault/v1","overrides":{"max_attempts":40},"faults":[]})");
  ASSERT_TRUE(bad_attempts.has_value());
  EXPECT_FALSE(FaultPlan::from_json(*bad_attempts, &out, &error));
  EXPECT_NE(error.find("max_attempts"), std::string::npos);
}

// --- retry backoff ----------------------------------------------------------

TEST(RetryBackoffTest, BaseOneIsExactlyTheFlatAckTimeout) {
  HlsrgConfig cfg;  // paper defaults: 5 s flat
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(retry_timeout(cfg, attempt), cfg.ack_timeout);
  }
}

TEST(RetryBackoffTest, ExponentialGrowthIsCapped) {
  HlsrgConfig cfg;
  cfg.retry_backoff_base = 2.0;
  cfg.retry_backoff_cap = SimTime::from_sec(12.0);
  EXPECT_EQ(retry_timeout(cfg, 1), SimTime::from_sec(5.0));
  EXPECT_EQ(retry_timeout(cfg, 2), SimTime::from_sec(10.0));
  EXPECT_EQ(retry_timeout(cfg, 3), SimTime::from_sec(12.0));  // capped (20 s)
  EXPECT_EQ(retry_timeout(cfg, 4), SimTime::from_sec(12.0));
}

// --- radio degradation zones ------------------------------------------------

TEST(RadioLossZoneTest, BeaconNeighborExpiresAcrossFaultWindow) {
  Simulator sim(6);
  NodeRegistry reg;
  const NodeId a = reg.add_node(Vec2{0, 0});
  const NodeId b = reg.add_node(Vec2{300, 0});
  RadioConfig rcfg;
  rcfg.base_loss = 0.0;
  RadioMedium medium(sim, reg, rcfg);
  BeaconConfig bcfg;
  bcfg.enabled = true;
  bcfg.interval_sec = 1.0;
  bcfg.timeout_sec = 3.0;
  BeaconService beacons(medium, reg, bcfg);

  sim.run_until(SimTime::from_sec(2.0));
  std::vector<BeaconService::Neighbor> out;
  beacons.neighbors_of(a, &out);
  EXPECT_FALSE(out.empty());  // healthy radio: a hears b

  // Fault window: total loss for receivers around a. Beacons from b keep
  // being offered but every reception at a drops, so past the beacon
  // timeout the neighbor entry must expire.
  medium.set_loss_zones({{Aabb{{-50.0, -50.0}, {50.0, 50.0}}, 1.0}});
  sim.run_until(SimTime::from_sec(8.0));
  out.clear();
  beacons.neighbors_of(a, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(sim.metrics().radio_drops, 0u);

  // Window ends: the zone list clears and the neighbor is relearned.
  medium.set_loss_zones({});
  sim.run_until(SimTime::from_sec(10.0));
  out.clear();
  beacons.neighbors_of(a, &out);
  EXPECT_FALSE(out.empty());
  (void)b;
}

// --- World-level fault runs -------------------------------------------------

ScenarioConfig crash_scenario(std::uint64_t seed) {
  // Small map: the single L3 RSU crashes across the start of the query
  // window, so early queries must survive on retries until the reboot.
  ScenarioConfig cfg = paper_scenario(150, seed);
  cfg.hlsrg.max_attempts = 4;
  cfg.hlsrg.retry_backoff_base = 2.0;
  FaultWindow w;
  w.kind = FaultKind::kRsuCrash;
  w.begin = SimTime::from_sec(55.0);
  w.end = SimTime::from_sec(75.0);
  w.level = 3;
  w.col = -1;  // every L3 RSU (the 2 km map has exactly one)
  cfg.fault_plan.windows.push_back(w);
  return cfg;
}

TEST(FaultWorldTest, RsuCrashRunStaysAuditCleanAndCountsAvailability) {
  const ScenarioConfig cfg = crash_scenario(71);
  World world(cfg, Protocol::kHlsrg);
  ASSERT_NE(world.fault(), nullptr);
  const RunMetrics& m = world.run();
  EXPECT_TRUE(world.audit_now().ok()) << world.audit_now().to_string();
  EXPECT_GT(m.queries_issued, 0u);
  // Queries issued inside the [55, 75) window are the availability cohort.
  EXPECT_GT(m.fault_queries_issued, 0u);
  EXPECT_LE(m.fault_queries_ok, m.fault_queries_issued);
  // The crash suppressed traffic at the dead RSU and the digest records the
  // schedule that did it.
  EXPECT_GT(m.rsu_suppressed, 0u);
  EXPECT_NE(m.fault_plan_digest, 0u);
  EXPECT_EQ(m.fault_plan_digest, cfg.fault_plan.digest());
  // Settled + stranded covers every query: nothing silently lost.
  EXPECT_EQ(m.queries_issued,
            m.queries_succeeded + m.queries_failed + m.queries_stranded);
}

TEST(FaultWorldTest, FaultRunsAreDeterministic) {
  const ScenarioConfig cfg = crash_scenario(72);
  World a(cfg, Protocol::kHlsrg);
  World b(cfg, Protocol::kHlsrg);
  a.run();
  b.run();
  EXPECT_EQ(state_digest(a), state_digest(b));
  EXPECT_EQ(a.metrics().fault_queries_ok, b.metrics().fault_queries_ok);
}

TEST(FaultWorldTest, EmptyPlanFileIsByteIdenticalToNoPlan) {
  const std::string path = ::testing::TempDir() + "/hlsrg_empty_fault.json";
  std::string error;
  ASSERT_TRUE(write_json_file(FaultPlan{}.to_json(), path, &error)) << error;

  ScenarioConfig plain = paper_scenario(100, 73);
  ScenarioConfig with_file = plain;
  with_file.fault_plan_file = path;

  World a(plain, Protocol::kHlsrg);
  World b(with_file, Protocol::kHlsrg);
  EXPECT_EQ(b.fault(), nullptr);  // empty plan builds no injector
  a.run();
  b.run();
  EXPECT_EQ(state_digest(a), state_digest(b));
  EXPECT_EQ(a.metrics().fault_plan_digest, 0u);
  EXPECT_EQ(b.metrics().fault_plan_digest, 0u);
}

// The PR's acceptance gate: under an all-faults plan (crash + link cut +
// partition + radio loss + GPS noise), graceful degradation must not lose
// to doing nothing. Deterministic — one fixed seed, exact replay.
TEST(FaultWorldTest, FailoverBeatsNoFailoverOnAllFaultsPlan) {
  ScenarioConfig cfg = paper_scenario(300, 76);
  cfg.map.size_m = 4000.0;  // 2x2 L3 mesh: sibling L3s exist to fail over to
  cfg.hlsrg.max_attempts = 4;
  cfg.hlsrg.retry_backoff_base = 2.0;
  auto window = [&cfg](FaultKind kind, double begin, double end) -> FaultWindow& {
    FaultWindow w;
    w.kind = kind;
    w.begin = SimTime::from_sec(begin);
    w.end = SimTime::from_sec(end);
    cfg.fault_plan.windows.push_back(w);
    return cfg.fault_plan.windows.back();
  };
  {  // L3 (0,0) dies for good: outlasts the whole retry budget.
    FaultWindow& w = window(FaultKind::kRsuCrash, 55.0, 0.0);
    w.level = 3;
    w.col = 0;
    w.row = 0;
  }
  {
    FaultWindow& w = window(FaultKind::kLinkCut, 60.0, 0.0);
    w.level = 2;
    w.col = 3;
    w.row = 3;
    w.peer_level = 3;
    w.peer_col = 1;
    w.peer_row = 1;
  }
  {
    FaultWindow& w = window(FaultKind::kPartition, 50.0, 80.0);
    w.has_box = true;
    w.box = Aabb{{0.0, 0.0}, {2000.0, 4000.0}};
  }
  {
    FaultWindow& w = window(FaultKind::kRadioLoss, 50.0, 85.0);
    w.has_box = true;
    w.box = Aabb{{2000.0, 0.0}, {4000.0, 2000.0}};
    w.extra_loss = 0.3;
  }
  window(FaultKind::kGpsNoise, 50.0, 85.0).sigma_m = 20.0;

  ScenarioConfig control = cfg;
  control.hlsrg.enable_failover = false;
  World with(cfg, Protocol::kHlsrg);
  World without(control, Protocol::kHlsrg);
  const RunMetrics& m_with = with.run();
  const RunMetrics& m_without = without.run();
  EXPECT_TRUE(with.audit_now().ok()) << with.audit_now().to_string();
  EXPECT_TRUE(without.audit_now().ok()) << without.audit_now().to_string();
  EXPECT_GT(m_with.query_failovers, 0u);
  EXPECT_EQ(m_without.query_failovers, 0u);
  EXPECT_GT(m_with.queries_succeeded, m_without.queries_succeeded);
  EXPECT_GT(m_with.fault_queries_ok, m_without.fault_queries_ok);
}

TEST(FaultWorldTest, PlanOverridesReachTheProtocolConfig) {
  ScenarioConfig cfg = paper_scenario(2, 74);
  cfg.fault_plan.overrides.max_attempts = 6;
  cfg.fault_plan.overrides.ack_timeout_sec = 2.5;
  World world(cfg, Protocol::kHlsrg);
  EXPECT_EQ(world.config().hlsrg.max_attempts, 6);
  EXPECT_EQ(world.config().hlsrg.ack_timeout, SimTime::from_sec(2.5));
}

}  // namespace
}  // namespace hlsrg
